//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * branch-and-bound vs. exhaustive scan over the leading-row space
//!   (§4.2's claim that B&B keeps solution times small as the coefficient
//!   bound grows);
//! * how much exact re-simulation the candidate-ranking heuristic saves
//!   (`simulate_top` sensitivity of the compound search).
//!
//! Dependency-free harness (std `Instant`).

mod util;

use loopmem_core::optimize::{minimize_mws, SearchMode};
use loopmem_core::{branch_and_bound, two_level_objective};
use loopmem_dep::legality::row_tileable;
use loopmem_dep::{analyze, DependenceSet};
use loopmem_ir::parse;
use loopmem_linalg::gcd::gcd_i64;
use loopmem_linalg::Rational;
use util::bench;

fn example8_deps() -> DependenceSet {
    analyze(
        &parse(
            "array X[200]\nfor i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        )
        .expect("kernel parses"),
    )
}

fn exhaustive(alpha: (i64, i64), deps: &DependenceSet, bound: i64) -> Option<Rational> {
    let mut best: Option<Rational> = None;
    for a in -bound..=bound {
        for b in -bound..=bound {
            if (a, b) == (0, 0) || gcd_i64(a, b) != 1 || !row_tileable(&[a, b], deps) {
                continue;
            }
            let obj = two_level_objective(alpha, (a, b), (25, 10));
            if best.as_ref().is_none_or(|c| obj < *c) {
                best = Some(obj);
            }
        }
    }
    best
}

fn main() {
    let deps = example8_deps();
    println!("== leading-row search: branch & bound vs exhaustive ==");
    for bound in [4i64, 8, 16, 32, 64] {
        bench(&format!("branch_and_bound/{bound}"), || {
            branch_and_bound((2, 5), &deps, (25, 10), bound)
        });
        bench(&format!("exhaustive/{bound}"), || {
            exhaustive((2, 5), &deps, bound)
        });
    }

    println!("== compound search: simulate_top sensitivity ==");
    let nest = loopmem_bench::kernel_by_name("full_search")
        .expect("kernel exists")
        .nest();
    for top in [1usize, 4, 12, 24] {
        bench(&format!("simulate_top/{top}"), || {
            minimize_mws(
                &nest,
                SearchMode::Compound {
                    max_coeff: 6,
                    simulate_top: top,
                },
            )
        });
    }
}
