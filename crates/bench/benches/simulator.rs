//! Throughput of the exact-window simulator (the reproduction's ground
//! truth), per kernel and against nest size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use loopmem_bench::all_kernels;
use loopmem_ir::parse;
use loopmem_sim::{count_iterations, simulate};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate");
    g.sample_size(10);
    for k in all_kernels() {
        let nest = k.nest();
        g.throughput(Throughput::Elements(count_iterations(&nest)));
        g.bench_with_input(BenchmarkId::from_parameter(k.name), &nest, |b, nest| {
            b.iter(|| black_box(simulate(black_box(nest))))
        });
    }
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_scaling");
    g.sample_size(10);
    for n in [32i64, 64, 128, 256] {
        let src = format!(
            "array A[{n}][{n}]\nfor i = 2 to {n} {{ for j = 1 to {n} {{ A[i][j] = A[i-1][j] + A[i][j]; }} }}"
        );
        let nest = parse(&src).expect("scaling kernel parses");
        g.throughput(Throughput::Elements(count_iterations(&nest)));
        g.bench_with_input(BenchmarkId::from_parameter(n), &nest, |b, nest| {
            b.iter(|| black_box(simulate(black_box(nest))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernels, bench_scaling);
criterion_main!(benches);
