//! Throughput of the exact-window simulator (the reproduction's ground
//! truth), per kernel and against nest size.
//!
//! Dependency-free harness: `harness = false` + `std::time::Instant`
//! (criterion is unavailable offline). For the cross-PR tracked numbers,
//! run the `perfsuite` binary instead.

mod util;

use loopmem_bench::all_kernels;
use loopmem_ir::parse;
use loopmem_sim::{count_iterations, simulate};
use util::bench;

fn main() {
    println!("== simulate: paper kernels ==");
    for k in all_kernels() {
        let nest = k.nest();
        let iters = count_iterations(&nest);
        bench(&format!("simulate/{} ({iters} its)", k.name), || {
            simulate(&nest)
        });
    }

    println!("== simulate: size scaling ==");
    for n in [32i64, 64, 128, 256] {
        let src = format!(
            "array A[{n}][{n}]\nfor i = 2 to {n} {{ for j = 1 to {n} {{ A[i][j] = A[i-1][j] + A[i][j]; }} }}"
        );
        let nest = parse(&src).expect("scaling kernel parses");
        bench(&format!("simulate_scaling/{n}"), || simulate(&nest));
    }
}
