//! Cost of the §4 transformation search, per kernel and per mode.
//!
//! The paper argues the search is cheap because "the number of variables
//! is linear in the number of nested loops which is usually very small in
//! practice (≤ 4)". This bench measures the full search — candidate
//! generation, legality filtering, ranking, and exact re-simulation — for
//! the compound mode and the interchange+reversal baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loopmem_bench::all_kernels;
use loopmem_core::optimize::{minimize_mws, SearchMode};
use std::hint::black_box;

fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("minimize_mws");
    g.sample_size(10);
    for k in all_kernels() {
        let nest = k.nest();
        g.bench_with_input(BenchmarkId::new("compound", k.name), &nest, |b, nest| {
            b.iter(|| black_box(minimize_mws(black_box(nest), SearchMode::default())))
        });
        g.bench_with_input(
            BenchmarkId::new("interchange_reversal", k.name),
            &nest,
            |b, nest| {
                b.iter(|| {
                    black_box(minimize_mws(
                        black_box(nest),
                        SearchMode::InterchangeReversal,
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
