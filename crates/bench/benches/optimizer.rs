//! Cost of the §4 transformation search, per kernel and per mode.
//!
//! The paper argues the search is cheap because "the number of variables
//! is linear in the number of nested loops which is usually very small in
//! practice (≤ 4)". This bench measures the full search — candidate
//! generation, legality filtering, ranking, and exact re-simulation — for
//! the compound mode and the interchange+reversal baseline.
//! Dependency-free harness (std `Instant`).

mod util;

use loopmem_bench::all_kernels;
use loopmem_core::optimize::{minimize_mws, SearchMode};
use util::bench;

fn main() {
    println!("== minimize_mws: compound vs interchange+reversal ==");
    for k in all_kernels() {
        let nest = k.nest();
        bench(&format!("compound/{}", k.name), || {
            minimize_mws(&nest, SearchMode::default())
        });
        bench(&format!("interchange_reversal/{}", k.name), || {
            minimize_mws(&nest, SearchMode::InterchangeReversal)
        });
    }
}
