//! Shared std-`Instant` measurement loop for the `harness = false` benches
//! (criterion is unavailable offline).

use std::hint::black_box;
use std::time::Instant;

/// Runs `f` a few warm-up times, then measures the median of `RUNS`
/// timed executions and prints one aligned line.
pub fn bench<T>(label: &str, mut f: impl FnMut() -> T) {
    const WARMUP: usize = 2;
    const RUNS: usize = 5;
    for _ in 0..WARMUP {
        black_box(f());
    }
    let mut samples: Vec<f64> = (0..RUNS)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples[RUNS / 2];
    println!("  {label:<56} {:>12.3} ms", median * 1e3);
}
