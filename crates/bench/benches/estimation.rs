//! §6 speed claim: the dependence-based estimators vs. exact enumeration.
//!
//! The paper positions its formulas against the "more expensive but exact"
//! counting of Clauss and Pugh. This bench quantifies the gap on the seven
//! kernels and on a size sweep of the Example 4 access pattern: the
//! closed forms are O(depth · refs) while enumeration scales with the
//! iteration count. Dependency-free harness (std `Instant`).

mod util;

use loopmem_bench::all_kernels;
use loopmem_core::estimate_distinct;
use loopmem_ir::parse;
use loopmem_poly::count::distinct_accesses;
use util::bench;

fn main() {
    println!("== distinct accesses: formula vs enumeration, paper kernels ==");
    for k in all_kernels() {
        let nest = k.nest();
        bench(&format!("formula/{}", k.name), || estimate_distinct(&nest));
        bench(&format!("enumerate/{}", k.name), || {
            distinct_accesses(&nest)
        });
    }

    println!("== example 4 size sweep ==");
    for n in [10i64, 40, 160, 640] {
        let src = format!(
            "array A[{}]\nfor i = 1 to {n} {{ for j = 1 to {n} {{ A[2i + 5j + 1]; }} }}",
            7 * n + 10
        );
        let nest = parse(&src).expect("sweep kernel parses");
        bench(&format!("formula/{n}"), || estimate_distinct(&nest));
        bench(&format!("enumerate/{n}"), || distinct_accesses(&nest));
    }
}
