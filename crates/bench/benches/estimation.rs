//! §6 speed claim: the dependence-based estimators vs. exact enumeration.
//!
//! The paper positions its formulas against the "more expensive but exact"
//! counting of Clauss and Pugh. This bench quantifies the gap on the seven
//! kernels and on a size sweep of the Example 4 access pattern: the
//! closed forms are O(depth · refs) while enumeration scales with the
//! iteration count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loopmem_bench::all_kernels;
use loopmem_core::estimate_distinct;
use loopmem_ir::parse;
use loopmem_poly::count::distinct_accesses;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("distinct_accesses");
    g.sample_size(10);
    for k in all_kernels() {
        let nest = k.nest();
        g.bench_with_input(BenchmarkId::new("formula", k.name), &nest, |b, nest| {
            b.iter(|| black_box(estimate_distinct(black_box(nest))))
        });
        g.bench_with_input(BenchmarkId::new("enumerate", k.name), &nest, |b, nest| {
            b.iter(|| black_box(distinct_accesses(black_box(nest))))
        });
    }
    g.finish();
}

fn bench_size_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("example4_sweep");
    g.sample_size(10);
    for n in [10i64, 40, 160, 640] {
        let src = format!(
            "array A[{}]\nfor i = 1 to {n} {{ for j = 1 to {n} {{ A[2i + 5j + 1]; }} }}",
            7 * n + 10
        );
        let nest = parse(&src).expect("sweep kernel parses");
        g.bench_with_input(BenchmarkId::new("formula", n), &nest, |b, nest| {
            b.iter(|| black_box(estimate_distinct(black_box(nest))))
        });
        g.bench_with_input(BenchmarkId::new("enumerate", n), &nest, |b, nest| {
            b.iter(|| black_box(distinct_accesses(black_box(nest))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernels, bench_size_sweep);
criterion_main!(benches);
