//! The certificate model and its NDJSON wire format.
//!
//! A [`Certificate`] is the optimizer's *argument* for one user-facing
//! answer, written in terms a small checker can replay: the dependence
//! distances and their images under a transformation, the primitive cone
//! direction behind a pruned search box, the evaluated frontier behind a
//! claimed minimum, the analytic ladder step behind a degraded bound, or
//! the per-nest terms behind a scratchpad size. Emission lives in
//! `loopmem-core` (next to the searches); this crate only *defines* the
//! model and *checks* it, so a bug in the search cannot hide in the
//! checker.
//!
//! The wire format is NDJSON — one certificate per line, fixed key order,
//! emitted by [`Certificate::to_json_line`] and read back by
//! [`parse_certificates`] through the workspace's in-tree
//! [`loopmem_ir::json`] parser. Serialization is deterministic:
//! `parse(emit(c)) == c` and `emit(parse(line)) == line` for every line
//! this module emits, which the round-trip tests pin byte-for-byte.

use loopmem_ir::json::{escape_json, parse_json, Json};

/// One legality-constraining dependence distance and its image `T·δ`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistanceImage {
    /// The dependence distance `δ` (flow/anti/output; never input).
    pub distance: Vec<i64>,
    /// The optimizer's recorded evaluation of `T·δ`.
    pub image: Vec<i64>,
}

/// Legality of one transformation against one nest's dependence set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LegalityCert {
    /// Index of the nest inside the program.
    pub nest: usize,
    /// The unimodular transformation, row-major.
    pub transform: Vec<Vec<i64>>,
    /// The deduplicated, sorted constraining distance set with the
    /// optimizer's recorded `T·δ` evaluations.
    pub evaluations: Vec<DistanceImage>,
    /// `true` claims full permutability (`T·δ ≥ 0` component-wise, §4.2);
    /// `false` claims only lexicographic legality (`T·δ ≻ 0`, §2.1).
    pub tileable: bool,
}

/// One discarded coefficient box `[alo, ahi] × [blo, bhi]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrunedBox {
    /// Inclusive range of the first row coefficient.
    pub alo: i64,
    /// Inclusive upper end of the first row coefficient.
    pub ahi: i64,
    /// Inclusive range of the second row coefficient.
    pub blo: i64,
    /// Inclusive upper end of the second row coefficient.
    pub bhi: i64,
}

/// Soundness of the §4.2 branch-and-bound cone pruning: a rank-1
/// dependence cone plus the interval-division argument for every box the
/// search discarded without evaluating a window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConePruneCert {
    /// Index of the (2-deep) nest inside the program.
    pub nest: usize,
    /// The coefficient box half-width the rank-1 basis was certified in.
    pub bound: i64,
    /// The primitive direction: every tileable row in `[-bound, bound]²`
    /// is an integer multiple of this vector.
    pub direction: Vec<i64>,
    /// The boxes discarded off the line.
    pub boxes: Vec<PrunedBox>,
}

/// One evaluated candidate on the optimality frontier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontierEntry {
    /// The candidate transformation, row-major.
    pub transform: Vec<Vec<i64>>,
    /// Its evaluated maximum window size.
    pub mws: u64,
}

/// Minimality of the chosen transformation over the certified search
/// space: the full frontier of evaluated candidates with their MWS values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OptimalityCert {
    /// Index of the nest inside the program.
    pub nest: usize,
    /// MWS of the untransformed nest (the identity's frontier value).
    pub mws_before: u64,
    /// MWS of the winner — must be the frontier minimum.
    pub mws_after: u64,
    /// The winning transformation, row-major.
    pub transform: Vec<Vec<i64>>,
    /// Every candidate the search evaluated.
    pub frontier: Vec<FrontierEntry>,
}

/// A degraded answer's interval claim: which analytic ladder step produced
/// it and why the run degraded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundsCert {
    /// Index of the nest the bound is about, or `None` for a
    /// program-level quantity.
    pub nest: Option<usize>,
    /// What is being bounded: `"nest-mws"` or `"program-words"`.
    pub quantity: String,
    /// The ladder step: `exact`, `union-box`, `closed-form`,
    /// `partial-program`, or `salvaged-prefix`.
    pub method: String,
    /// Claimed lower bound.
    pub lower: u64,
    /// Claimed upper bound.
    pub upper: u64,
    /// Degradation provenance (trip reason, overflow context, panic
    /// message) — empty for exact answers.
    pub reason: String,
}

/// One nest's contribution to the shared-scratchpad formula.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizingTerm {
    /// The nest's own maximum window size.
    pub mws: u64,
    /// Elements live across the nest's boundaries while it runs.
    pub live_through: u64,
}

/// The shared-scratchpad sizing argument: the per-nest terms and boundary
/// live counts that reproduce `words = max(max_k(MWS_k + live_through_k),
/// max_b boundary_live_b)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SizingCert {
    /// Per-nest `(MWS_k, live_through_k)` terms.
    pub per_nest: Vec<SizingTerm>,
    /// Elements live across each adjacent-nest boundary.
    pub boundary_live: Vec<u64>,
    /// Index of the nest whose term peaks.
    pub peak_nest: usize,
    /// The claimed scratchpad size in words.
    pub words: u64,
}

/// One accepted step of the greedy fusion search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FusionStep {
    /// Boundary index the step fused at.
    pub at: usize,
    /// Scratchpad words before the step.
    pub before: u64,
    /// Scratchpad words after the step — must be strictly smaller.
    pub after: u64,
}

/// The fusion search's strict-decrease log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FusionCert {
    /// Scratchpad words of the unfused program.
    pub unfused: u64,
    /// Scratchpad words after all accepted steps.
    pub fused: u64,
    /// The accepted steps in order.
    pub steps: Vec<FusionStep>,
}

/// A structured, checkable argument for one optimizer answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Certificate {
    /// Legality of a transformation (`T·δ` evaluations).
    Legality(LegalityCert),
    /// Soundness of branch-and-bound cone pruning.
    ConePrune(ConePruneCert),
    /// Minimality of the chosen transformation over the frontier.
    Optimality(OptimalityCert),
    /// A degraded answer's interval claim.
    Bounds(BoundsCert),
    /// The shared-scratchpad `max_k` arithmetic.
    Sizing(SizingCert),
    /// The fusion search's strict-decrease log.
    Fusion(FusionCert),
}

impl Certificate {
    /// The wire tag of this certificate kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Certificate::Legality(_) => "legality",
            Certificate::ConePrune(_) => "cone-prune",
            Certificate::Optimality(_) => "optimality",
            Certificate::Bounds(_) => "bounds",
            Certificate::Sizing(_) => "sizing",
            Certificate::Fusion(_) => "fusion",
        }
    }
}

fn vec_json(v: &[i64]) -> String {
    let inner: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("[{}]", inner.join(","))
}

fn mat_json(m: &[Vec<i64>]) -> String {
    let inner: Vec<String> = m.iter().map(|r| vec_json(r)).collect();
    format!("[{}]", inner.join(","))
}

fn u64_vec_json(v: &[u64]) -> String {
    let inner: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("[{}]", inner.join(","))
}

impl Certificate {
    /// Serializes to one deterministic NDJSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        match self {
            Certificate::Legality(c) => {
                let evals: Vec<String> = c
                    .evaluations
                    .iter()
                    .map(|e| {
                        format!(
                            "{{\"distance\":{},\"image\":{}}}",
                            vec_json(&e.distance),
                            vec_json(&e.image)
                        )
                    })
                    .collect();
                format!(
                    "{{\"cert\":\"legality\",\"nest\":{},\"transform\":{},\
                     \"evaluations\":[{}],\"tileable\":{}}}",
                    c.nest,
                    mat_json(&c.transform),
                    evals.join(","),
                    c.tileable
                )
            }
            Certificate::ConePrune(c) => {
                let boxes: Vec<String> = c
                    .boxes
                    .iter()
                    .map(|b| format!("[{},{},{},{}]", b.alo, b.ahi, b.blo, b.bhi))
                    .collect();
                format!(
                    "{{\"cert\":\"cone-prune\",\"nest\":{},\"bound\":{},\
                     \"direction\":{},\"boxes\":[{}]}}",
                    c.nest,
                    c.bound,
                    vec_json(&c.direction),
                    boxes.join(",")
                )
            }
            Certificate::Optimality(c) => {
                let frontier: Vec<String> = c
                    .frontier
                    .iter()
                    .map(|f| {
                        format!(
                            "{{\"transform\":{},\"mws\":{}}}",
                            mat_json(&f.transform),
                            f.mws
                        )
                    })
                    .collect();
                format!(
                    "{{\"cert\":\"optimality\",\"nest\":{},\"mws_before\":{},\
                     \"mws_after\":{},\"transform\":{},\"frontier\":[{}]}}",
                    c.nest,
                    c.mws_before,
                    c.mws_after,
                    mat_json(&c.transform),
                    frontier.join(",")
                )
            }
            Certificate::Bounds(c) => {
                let nest = match c.nest {
                    Some(k) => k.to_string(),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"cert\":\"bounds\",\"nest\":{},\"quantity\":\"{}\",\
                     \"method\":\"{}\",\"lower\":{},\"upper\":{},\"reason\":\"{}\"}}",
                    nest,
                    escape_json(&c.quantity),
                    escape_json(&c.method),
                    c.lower,
                    c.upper,
                    escape_json(&c.reason)
                )
            }
            Certificate::Sizing(c) => {
                let terms: Vec<String> = c
                    .per_nest
                    .iter()
                    .map(|t| format!("{{\"mws\":{},\"live_through\":{}}}", t.mws, t.live_through))
                    .collect();
                format!(
                    "{{\"cert\":\"sizing\",\"per_nest\":[{}],\"boundary_live\":{},\
                     \"peak_nest\":{},\"words\":{}}}",
                    terms.join(","),
                    u64_vec_json(&c.boundary_live),
                    c.peak_nest,
                    c.words
                )
            }
            Certificate::Fusion(c) => {
                let steps: Vec<String> = c
                    .steps
                    .iter()
                    .map(|s| {
                        format!(
                            "{{\"at\":{},\"before\":{},\"after\":{}}}",
                            s.at, s.before, s.after
                        )
                    })
                    .collect();
                format!(
                    "{{\"cert\":\"fusion\",\"unfused\":{},\"fused\":{},\"steps\":[{}]}}",
                    c.unfused,
                    c.fused,
                    steps.join(",")
                )
            }
        }
    }
}

fn as_usize(j: &Json) -> Option<usize> {
    j.as_i64().and_then(|n| usize::try_from(n).ok())
}

fn as_u64(j: &Json) -> Option<u64> {
    j.as_i64().and_then(|n| u64::try_from(n).ok())
}

fn as_vec_i64(j: &Json) -> Option<Vec<i64>> {
    match j {
        Json::Arr(a) => a.iter().map(Json::as_i64).collect(),
        _ => None,
    }
}

fn as_mat_i64(j: &Json) -> Option<Vec<Vec<i64>>> {
    match j {
        Json::Arr(a) => a.iter().map(as_vec_i64).collect(),
        _ => None,
    }
}

fn as_vec_u64(j: &Json) -> Option<Vec<u64>> {
    match j {
        Json::Arr(a) => a.iter().map(as_u64).collect(),
        _ => None,
    }
}

fn field<'a>(j: &'a Json, key: &str) -> Result<&'a Json, String> {
    j.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

impl Certificate {
    /// Deserializes one certificate from a parsed JSON object.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field; the
    /// checker reports it as an `LM7007` violation.
    pub fn from_json(j: &Json) -> Result<Certificate, String> {
        let kind = field(j, "cert")?
            .as_str()
            .ok_or("field 'cert' must be a string")?;
        match kind {
            "legality" => {
                let evals = match field(j, "evaluations")? {
                    Json::Arr(a) => a
                        .iter()
                        .map(|e| {
                            Some(DistanceImage {
                                distance: as_vec_i64(e.get("distance")?)?,
                                image: as_vec_i64(e.get("image")?)?,
                            })
                        })
                        .collect::<Option<Vec<_>>>()
                        .ok_or("bad 'evaluations' entry")?,
                    _ => return Err("'evaluations' must be an array".into()),
                };
                Ok(Certificate::Legality(LegalityCert {
                    nest: as_usize(field(j, "nest")?).ok_or("bad 'nest'")?,
                    transform: as_mat_i64(field(j, "transform")?).ok_or("bad 'transform'")?,
                    evaluations: evals,
                    tileable: match field(j, "tileable")? {
                        Json::Bool(b) => *b,
                        _ => return Err("'tileable' must be a boolean".into()),
                    },
                }))
            }
            "cone-prune" => {
                let boxes = match field(j, "boxes")? {
                    Json::Arr(a) => a
                        .iter()
                        .map(|b| {
                            let v = as_vec_i64(b)?;
                            if v.len() != 4 {
                                return None;
                            }
                            Some(PrunedBox {
                                alo: v[0],
                                ahi: v[1],
                                blo: v[2],
                                bhi: v[3],
                            })
                        })
                        .collect::<Option<Vec<_>>>()
                        .ok_or("bad 'boxes' entry")?,
                    _ => return Err("'boxes' must be an array".into()),
                };
                Ok(Certificate::ConePrune(ConePruneCert {
                    nest: as_usize(field(j, "nest")?).ok_or("bad 'nest'")?,
                    bound: field(j, "bound")?.as_i64().ok_or("bad 'bound'")?,
                    direction: as_vec_i64(field(j, "direction")?).ok_or("bad 'direction'")?,
                    boxes,
                }))
            }
            "optimality" => {
                let frontier = match field(j, "frontier")? {
                    Json::Arr(a) => a
                        .iter()
                        .map(|f| {
                            Some(FrontierEntry {
                                transform: as_mat_i64(f.get("transform")?)?,
                                mws: as_u64(f.get("mws")?)?,
                            })
                        })
                        .collect::<Option<Vec<_>>>()
                        .ok_or("bad 'frontier' entry")?,
                    _ => return Err("'frontier' must be an array".into()),
                };
                Ok(Certificate::Optimality(OptimalityCert {
                    nest: as_usize(field(j, "nest")?).ok_or("bad 'nest'")?,
                    mws_before: as_u64(field(j, "mws_before")?).ok_or("bad 'mws_before'")?,
                    mws_after: as_u64(field(j, "mws_after")?).ok_or("bad 'mws_after'")?,
                    transform: as_mat_i64(field(j, "transform")?).ok_or("bad 'transform'")?,
                    frontier,
                }))
            }
            "bounds" => Ok(Certificate::Bounds(BoundsCert {
                nest: match field(j, "nest")? {
                    Json::Null => None,
                    other => Some(as_usize(other).ok_or("bad 'nest'")?),
                },
                quantity: field(j, "quantity")?
                    .as_str()
                    .ok_or("bad 'quantity'")?
                    .to_string(),
                method: field(j, "method")?
                    .as_str()
                    .ok_or("bad 'method'")?
                    .to_string(),
                lower: as_u64(field(j, "lower")?).ok_or("bad 'lower'")?,
                upper: as_u64(field(j, "upper")?).ok_or("bad 'upper'")?,
                reason: field(j, "reason")?
                    .as_str()
                    .ok_or("bad 'reason'")?
                    .to_string(),
            })),
            "sizing" => {
                let per_nest = match field(j, "per_nest")? {
                    Json::Arr(a) => a
                        .iter()
                        .map(|t| {
                            Some(SizingTerm {
                                mws: as_u64(t.get("mws")?)?,
                                live_through: as_u64(t.get("live_through")?)?,
                            })
                        })
                        .collect::<Option<Vec<_>>>()
                        .ok_or("bad 'per_nest' entry")?,
                    _ => return Err("'per_nest' must be an array".into()),
                };
                Ok(Certificate::Sizing(SizingCert {
                    per_nest,
                    boundary_live: as_vec_u64(field(j, "boundary_live")?)
                        .ok_or("bad 'boundary_live'")?,
                    peak_nest: as_usize(field(j, "peak_nest")?).ok_or("bad 'peak_nest'")?,
                    words: as_u64(field(j, "words")?).ok_or("bad 'words'")?,
                }))
            }
            "fusion" => {
                let steps = match field(j, "steps")? {
                    Json::Arr(a) => a
                        .iter()
                        .map(|s| {
                            Some(FusionStep {
                                at: as_usize(s.get("at")?)?,
                                before: as_u64(s.get("before")?)?,
                                after: as_u64(s.get("after")?)?,
                            })
                        })
                        .collect::<Option<Vec<_>>>()
                        .ok_or("bad 'steps' entry")?,
                    _ => return Err("'steps' must be an array".into()),
                };
                Ok(Certificate::Fusion(FusionCert {
                    unfused: as_u64(field(j, "unfused")?).ok_or("bad 'unfused'")?,
                    fused: as_u64(field(j, "fused")?).ok_or("bad 'fused'")?,
                    steps,
                }))
            }
            other => Err(format!("unknown certificate kind '{other}'")),
        }
    }
}

/// Parses an NDJSON certificate stream (one certificate per non-empty
/// line).
///
/// # Errors
///
/// `(line_number, description)` for the first malformed line (1-based).
pub fn parse_certificates(src: &str) -> Result<Vec<Certificate>, (usize, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let j = parse_json(line).ok_or((i + 1, "not valid JSON".to_string()))?;
        out.push(Certificate::from_json(&j).map_err(|e| (i + 1, e))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Certificate> {
        vec![
            Certificate::Legality(LegalityCert {
                nest: 0,
                transform: vec![vec![2, 3], vec![1, 1]],
                evaluations: vec![DistanceImage {
                    distance: vec![3, -2],
                    image: vec![0, 1],
                }],
                tileable: true,
            }),
            Certificate::ConePrune(ConePruneCert {
                nest: 1,
                bound: 2,
                direction: vec![1, 0],
                boxes: vec![PrunedBox {
                    alo: -3,
                    ahi: -1,
                    blo: 1,
                    bhi: 3,
                }],
            }),
            Certificate::Optimality(OptimalityCert {
                nest: 0,
                mws_before: 44,
                mws_after: 21,
                transform: vec![vec![2, 3], vec![1, 1]],
                frontier: vec![FrontierEntry {
                    transform: vec![vec![2, 3], vec![1, 1]],
                    mws: 21,
                }],
            }),
            Certificate::Bounds(BoundsCert {
                nest: Some(2),
                quantity: "nest-mws".into(),
                method: "salvaged-prefix".into(),
                lower: 1,
                upper: 3_999_998,
                reason: "budget exhausted (max-iterations)".into(),
            }),
            Certificate::Sizing(SizingCert {
                per_nest: vec![
                    SizingTerm {
                        mws: 0,
                        live_through: 256,
                    },
                    SizingTerm {
                        mws: 0,
                        live_through: 256,
                    },
                ],
                boundary_live: vec![256],
                peak_nest: 0,
                words: 256,
            }),
            Certificate::Fusion(FusionCert {
                unfused: 256,
                fused: 0,
                steps: vec![FusionStep {
                    at: 0,
                    before: 256,
                    after: 0,
                }],
            }),
        ]
    }

    #[test]
    fn every_kind_round_trips_bit_identically() {
        for cert in samples() {
            let line = cert.to_json_line();
            let parsed = parse_certificates(&line).unwrap();
            assert_eq!(parsed, vec![cert.clone()], "value round trip: {line}");
            assert_eq!(parsed[0].to_json_line(), line, "byte round trip");
        }
    }

    #[test]
    fn whole_stream_round_trips() {
        let stream: String = samples().iter().map(|c| c.to_json_line() + "\n").collect();
        let parsed = parse_certificates(&stream).unwrap();
        assert_eq!(parsed, samples());
        let re: String = parsed.iter().map(|c| c.to_json_line() + "\n").collect();
        assert_eq!(re, stream);
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        let err = parse_certificates("{\"cert\":\"legality\"}").unwrap_err();
        assert_eq!(err.0, 1);
        assert!(err.1.contains("missing field"), "{err:?}");
        let err = parse_certificates("{\"cert\":\"bogus\"}").unwrap_err();
        assert!(err.1.contains("unknown certificate kind"), "{err:?}");
        let ok = samples()[0].to_json_line();
        let err = parse_certificates(&format!("{ok}\nnot json")).unwrap_err();
        assert_eq!(err.0, 2);
    }
}
