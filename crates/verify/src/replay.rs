//! Independent replay primitives for the certificate checker.
//!
//! Everything here is re-derived from the source nest with
//! `loopmem-linalg` / `loopmem-poly` / `loopmem-ir` primitives only — no
//! code is shared with the optimizer or the production simulator engines,
//! so an answer and its check cannot fail together. The replay is the
//! *exact but expensive* path the paper assigns to Clauss/Pugh-style
//! counting: lexicographic enumeration of the iteration space with
//! per-iteration time stamps, first/last-touch tables, and a
//! difference-array sweep. It is deliberately naive (single-threaded
//! hashmaps, no chunking) and capped at [`REPLAY_CAP`] iterations; the
//! checker skips the cross-checks — never approximates them — for nests
//! beyond the cap.

use loopmem_ir::{Affine, ArrayRef, Bound, LoopNest, Program, Statement};
use loopmem_linalg::gcd::{div_ceil, div_floor};
use loopmem_linalg::IMat;
use loopmem_poly::{regenerate_loops, Constraint, Polyhedron};
use std::collections::HashMap;

/// Iteration cap for exact replay cross-checks: the same order of
/// magnitude as the analyzer's sanitizer oracle, small enough that
/// `ci.sh verify` stays inside its time budget.
pub const REPLAY_CAP: u64 = 200_000;

/// Checked [`Affine`] evaluation: `None` when the result leaves `i64`.
/// The production `Affine::eval` panics on overflow; the checker must
/// stay total on adversarial nests (the robustness corpus includes
/// coefficients near `i64::MAX`), so it degrades to "replay unavailable"
/// instead.
fn affine_eval_checked(f: &Affine, iter: &[i64]) -> Option<i64> {
    let acc: i128 = f
        .coeffs()
        .iter()
        .zip(iter)
        .map(|(&c, &x)| (c as i128) * (x as i128))
        .sum::<i128>()
        + f.constant_term() as i128;
    i64::try_from(acc).ok()
}

/// Checked lower-bound evaluation (`max` over pieces of `ceil(expr/div)`).
fn bound_lower_checked(b: &Bound, iter: &[i64]) -> Option<i64> {
    b.pieces()
        .iter()
        .map(|p| Some(div_ceil(affine_eval_checked(&p.expr, iter)?, p.div)))
        .try_fold(i64::MIN, |acc, v| Some(acc.max(v?)))
}

/// Checked upper-bound evaluation (`min` over pieces of `floor(expr/div)`).
fn bound_upper_checked(b: &Bound, iter: &[i64]) -> Option<i64> {
    b.pieces()
        .iter()
        .map(|p| Some(div_floor(affine_eval_checked(&p.expr, iter)?, p.div)))
        .try_fold(i64::MAX, |acc, v| Some(acc.min(v?)))
}

/// Checked subscript computation `M·iter + offset`: `None` when any
/// component leaves `i64`.
fn index_at_checked(r: &ArrayRef, iter: &[i64]) -> Option<Vec<i64>> {
    r.matrix
        .rows_iter()
        .zip(&r.offset)
        .map(|(row, &off)| {
            let acc: i128 = row
                .iter()
                .zip(iter)
                .map(|(&c, &x)| (c as i128) * (x as i128))
                .sum::<i128>()
                + off as i128;
            i64::try_from(acc).ok()
        })
        .collect()
}

/// Static iteration count for nests whose bounds are all loop-invariant
/// (every piece's coefficient vector is zero): the product of the
/// per-level extents. `None` when any bound depends on an outer iterator
/// or an evaluation overflows — the walk must then discover the volume
/// itself.
fn static_volume(nest: &LoopNest) -> Option<u128> {
    let zero = vec![0i64; nest.depth()];
    let invariant = |b: &Bound| {
        b.pieces()
            .iter()
            .all(|p| p.expr.coeffs().iter().all(|&c| c == 0))
    };
    let mut vol: u128 = 1;
    for l in nest.loops() {
        if !invariant(&l.lower) || !invariant(&l.upper) {
            return None;
        }
        let lo = bound_lower_checked(&l.lower, &zero)?;
        let hi = bound_upper_checked(&l.upper, &zero)?;
        let extent = if hi < lo {
            0
        } else {
            (hi as i128 - lo as i128 + 1) as u128
        };
        vol = vol.checked_mul(extent)?;
    }
    Some(vol)
}

/// Calls `f` for every iteration of `nest` in lexicographic order.
/// Returns `false` (abandoning the walk) if more than `cap` iterations
/// would run or a bound evaluation overflows `i64`.
pub fn for_each_iteration_capped(
    nest: &LoopNest,
    cap: u64,
    f: &mut impl FnMut(&[i64]) -> bool,
) -> bool {
    // Declaring an over-cap rectangular nest unreplayable up front is
    // observationally identical to walking `cap` iterations and then
    // abandoning (the partial touches are discarded either way), and it
    // keeps adversarial huge-volume nests from costing `cap` hashmap
    // operations per replay.
    if matches!(static_volume(nest), Some(vol) if vol > cap as u128) {
        return false;
    }
    let n = nest.depth();
    let mut iter = vec![0i64; n];
    let mut count = 0u64;
    walk(nest, 0, &mut iter, &mut count, cap, f)
}

fn walk(
    nest: &LoopNest,
    level: usize,
    iter: &mut Vec<i64>,
    count: &mut u64,
    cap: u64,
    f: &mut impl FnMut(&[i64]) -> bool,
) -> bool {
    if level == nest.depth() {
        if *count == cap {
            return false;
        }
        *count += 1;
        return f(iter);
    }
    let Some(lo) = bound_lower_checked(&nest.loops()[level].lower, iter) else {
        return false;
    };
    let Some(hi) = bound_upper_checked(&nest.loops()[level].upper, iter) else {
        return false;
    };
    for v in lo..=hi {
        iter[level] = v;
        if !walk(nest, level + 1, iter, count, cap, f) {
            return false;
        }
    }
    iter[level] = 0;
    true
}

/// First/last per-iteration time stamps of every element touched by a
/// stream of nests, with one global clock. `(array, flat index)` keys a
/// touched element; values are `(first, last)` stamps.
type TouchMap = HashMap<(usize, Vec<i64>), (u64, u64)>;

fn record_touches(
    nest: &LoopNest,
    clock: &mut u64,
    cap: u64,
    global: &mut TouchMap,
    local: &mut TouchMap,
) -> bool {
    let mut t = *clock;
    let ok = for_each_iteration_capped(nest, cap, &mut |iter| {
        for r in nest.refs() {
            // An overflowing subscript makes the whole replay unavailable
            // — never a wrapped (wrong) address.
            let Some(idx) = index_at_checked(r, iter) else {
                return false;
            };
            let key = (r.array.0, idx);
            global
                .entry(key.clone())
                .and_modify(|e| e.1 = t)
                .or_insert((t, t));
            local.entry(key).and_modify(|e| e.1 = t).or_insert((t, t));
        }
        t += 1;
        true
    });
    *clock = t;
    ok
}

/// Maximum over time of the live count of `touches` inside the stamp
/// range `[start, end)`: an element is live at `t` when
/// `first ≤ t < last`.
fn sweep_mws(touches: &TouchMap, start: u64, end: u64) -> u64 {
    if end <= start {
        return 0;
    }
    let len = (end - start) as usize;
    let mut delta = vec![0i64; len];
    for &(first, last) in touches.values() {
        if first < last {
            delta[(first - start) as usize] += 1;
            delta[(last - start) as usize] -= 1;
        }
    }
    let mut cur = 0i64;
    let mut mws = 0i64;
    for d in delta {
        cur += d;
        mws = mws.max(cur);
    }
    mws as u64
}

/// Exact maximum window size of one nest, or `None` when the nest
/// exceeds `cap` iterations.
pub fn nest_mws(nest: &LoopNest, cap: u64) -> Option<u64> {
    let mut clock = 0u64;
    let mut global = TouchMap::new();
    let mut local = TouchMap::new();
    if !record_touches(nest, &mut clock, cap, &mut global, &mut local) {
        return None;
    }
    Some(sweep_mws(&global, 0, clock))
}

/// Whole-program replay tables: everything the sizing certificate claims,
/// re-derived with one global clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramReplay {
    /// Exact per-nest MWS from each nest's own touches only.
    pub per_nest_mws: Vec<u64>,
    /// Elements whose global lifetime crosses a boundary of nest `k`
    /// (in + out − cross inclusion–exclusion).
    pub live_through: Vec<u64>,
    /// Elements live across each adjacent-nest boundary.
    pub boundary_live: Vec<u64>,
    /// Maximum over time of the global live count.
    pub program_mws: u64,
}

/// Replays a whole program under one global clock, or `None` when the
/// total iteration count exceeds `cap`.
pub fn replay_program(program: &Program, cap: u64) -> Option<ProgramReplay> {
    let mut clock = 0u64;
    let mut global = TouchMap::new();
    let mut locals: Vec<TouchMap> = Vec::with_capacity(program.len());
    let mut spans: Vec<(u64, u64)> = Vec::with_capacity(program.len());
    for nest in program.nests() {
        let start = clock;
        let mut local = TouchMap::new();
        if !record_touches(nest, &mut clock, cap, &mut global, &mut local) {
            return None;
        }
        locals.push(local);
        spans.push((start, clock));
    }

    let per_nest_mws: Vec<u64> = locals
        .iter()
        .zip(&spans)
        .map(|(local, &(s, e))| sweep_mws(local, s, e))
        .collect();

    let mut live_through = vec![0u64; program.len()];
    let mut boundary_live = vec![0u64; program.len().saturating_sub(1)];
    for &(first, last) in global.values() {
        if first == last {
            continue;
        }
        for (k, &(s, e)) in spans.iter().enumerate() {
            // Live at the nest's start boundary (stamp s-1 → s) and/or at
            // its end boundary (stamp e-1 → e); crossing both counts once.
            let enters = first < s && last >= s;
            let exits = first < e && last >= e;
            if enters || exits {
                live_through[k] += 1;
            }
            if k + 1 < program.len() && exits {
                boundary_live[k] += 1;
            }
        }
    }

    Some(ProgramReplay {
        per_nest_mws,
        live_through,
        boundary_live,
        program_mws: sweep_mws(&global, 0, clock),
    })
}

/// Applies a unimodular transformation to a nest using only
/// `loopmem-poly` bound regeneration — the checker's own copy of the §4
/// code-generation step, kept independent of the optimizer's.
///
/// Returns `None` when `t` is not unimodular, its size differs from the
/// nest depth, or the image polyhedron cannot be regenerated.
pub fn apply_transform(nest: &LoopNest, t: &IMat) -> Option<LoopNest> {
    let n = nest.depth();
    if t.nrows() != n || t.ncols() != n {
        return None;
    }
    let t_inv = t.unimodular_inverse()?;
    let p = Polyhedron::from_nest(nest);
    let mut image = Polyhedron::universe(n);
    for c in p.constraints() {
        let coeffs: Vec<i64> = (0..n)
            .map(|j| (0..n).map(|i| c.coeffs[i] * t_inv[(i, j)]).sum::<i64>())
            .collect();
        image.add(Constraint::new(coeffs, c.constant));
    }
    let names: Vec<String> = (1..=n).map(|k| format!("t{k}")).collect();
    let loops = regenerate_loops(&image, &names).ok()?;
    let statements: Vec<Statement> = nest
        .statements()
        .iter()
        .map(|s| {
            Statement::new(
                s.refs()
                    .iter()
                    .map(|r| ArrayRef::new(r.array, &r.matrix * &t_inv, r.offset.clone(), r.kind))
                    .collect(),
            )
        })
        .collect();
    LoopNest::new(loops, nest.arrays().to_vec(), statements).ok()
}

/// A coarse but *sound* upper bound on a nest's MWS from interval
/// arithmetic alone: the MWS never exceeds the number of distinct touched
/// elements, which is capped by the union of per-reference subscript
/// boxes. `None` when the nest is not rectangular (no cheap box exists).
pub fn union_box_upper(nest: &LoopNest) -> Option<u64> {
    if nest
        .loops()
        .iter()
        .any(|l| l.constant_range().map(|(lo, hi)| hi < lo).unwrap_or(false))
    {
        // A zero-trip nest touches nothing.
        return Some(0);
    }
    let ranges = nest.var_ranges()?;
    let mut total: u128 = 0;
    for a in 0..nest.arrays().len() {
        let refs = nest.refs_to(loopmem_ir::ArrayId(a));
        if refs.is_empty() {
            continue;
        }
        let rank = refs[0].rank();
        let mut lo = vec![i64::MAX; rank];
        let mut hi = vec![i64::MIN; rank];
        for r in &refs {
            for (d, (rlo, rhi)) in r.index_ranges(&ranges).into_iter().enumerate() {
                lo[d] = lo[d].min(rlo);
                hi[d] = hi[d].max(rhi);
            }
        }
        let mut cells: u128 = 1;
        for d in 0..rank {
            let width = (hi[d] as i128 - lo[d] as i128 + 1).max(0) as u128;
            cells = cells.saturating_mul(width);
        }
        total = total.saturating_add(cells);
    }
    Some(u64::try_from(total).unwrap_or(u64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::{parse, parse_program};

    #[test]
    fn replay_mws_matches_the_paper_examples() {
        // Example 8: exact MWS 44 (closed form says 50).
        let nest = parse(
            "array X[200]\n\
             for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        )
        .unwrap();
        assert_eq!(nest_mws(&nest, REPLAY_CAP), Some(44));
        // Single-touch elements never enter the window.
        let once =
            parse("array A[10][10]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j]; } }").unwrap();
        assert_eq!(nest_mws(&once, REPLAY_CAP), Some(0));
    }

    #[test]
    fn replay_respects_the_cap() {
        let nest = parse("array A[10]\nfor i = 1 to 10 { for j = 1 to 10 { A[i]; } }").unwrap();
        assert_eq!(nest_mws(&nest, 5), None);
        assert!(nest_mws(&nest, 100).is_some());
    }

    #[test]
    fn program_replay_reproduces_the_pipeline_tables() {
        let program = parse_program(
            "array A[16][16]\narray B[16][16]\narray C[16][16]\n\
             for i = 1 to 16 { for j = 1 to 16 { A[i][j] = B[i][j]; } }\n\
             for i = 1 to 16 { for j = 1 to 16 { C[i][j] = A[i][j] + A[i][j]; } }",
        )
        .unwrap();
        let r = replay_program(&program, REPLAY_CAP).unwrap();
        // All 256 elements of A are written by nest 0 and read by nest 1.
        assert_eq!(r.boundary_live, vec![256]);
        assert_eq!(r.live_through, vec![256, 256]);
        assert_eq!(r.per_nest_mws, vec![0, 0]);
        assert_eq!(r.program_mws, 256);
    }

    #[test]
    fn transform_replay_reaches_the_paper_minimum() {
        // T = [[2,3],[1,1]] turns example 8's MWS 44 into the paper's 21.
        let nest = parse(
            "array X[200]\n\
             for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        )
        .unwrap();
        let t = IMat::from_rows(&[vec![2, 3], vec![1, 1]]);
        let out = apply_transform(&nest, &t).unwrap();
        assert_eq!(nest_mws(&out, REPLAY_CAP), Some(21));
        // Non-unimodular and wrong-size matrices are refused.
        assert!(apply_transform(&nest, &IMat::from_rows(&[vec![2, 0], vec![0, 1]])).is_none());
        assert!(apply_transform(&nest, &IMat::identity(3)).is_none());
    }

    #[test]
    fn overflowing_nests_are_unreplayable_not_wrong() {
        // Robustness-corpus shapes: a subscript product and a loop bound
        // that leave `i64`. The replay must degrade to `None` (skipping
        // the cross-check), never panic or wrap to a bogus address.
        let subscript = parse("array X[10]\nfor i = 1 to 5 { X[4000000000000000000i]; }").unwrap();
        assert_eq!(nest_mws(&subscript, REPLAY_CAP), None);
        let bound = parse(
            "array B[10]\n\
             for i = 800 to 900 {\n\
               for j = i + 9223372036854775000 to 9223372036854775807 { B[1]; }\n\
             }",
        )
        .unwrap();
        assert_eq!(nest_mws(&bound, REPLAY_CAP), None);
    }

    #[test]
    fn union_box_is_a_sound_mws_cap() {
        let nest = parse(
            "array X[200]\n\
             for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        )
        .unwrap();
        let upper = union_box_upper(&nest).unwrap();
        assert!(upper >= 44, "box cap {upper} must dominate the exact MWS");
        let empty = parse("array X[10]\nfor i = 5 to 4 { X[1]; }").unwrap();
        assert_eq!(union_box_upper(&empty), Some(0));
    }
}
