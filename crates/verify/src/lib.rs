//! Proof-carrying certificates for the loopmem optimizer, plus the
//! independent checker that validates them.
//!
//! The optimizer's searches (candidate enumeration, branch and bound,
//! fusion, scratchpad sizing) are fast but intricate — exactly the kind of
//! code a bug hides in. This crate makes them *auditable* instead of
//! *trusted*: every user-facing answer is accompanied by a
//! [`Certificate`] recording the evidence for the claim, and
//! [`check_certificates`] replays that evidence from scratch using only
//! the small arithmetic crates (`loopmem-linalg`, `loopmem-poly`,
//! `loopmem-dep`, `loopmem-ir`). The checker deliberately does **not**
//! depend on `loopmem-core` or `loopmem-analyze` — if the search code is
//! wrong, the checker cannot inherit the bug (see DESIGN.md §14 for the
//! trusted-base argument).
//!
//! Certificate kinds:
//!
//! * **legality** — the constraining distance set plus every `T·δ`
//!   evaluation behind a legality or tileability claim;
//! * **cone-prune** — the rank-1 primitive direction and the discarded
//!   boxes justified by the interval-division argument;
//! * **optimality** — the evaluated candidate frontier, so the claimed
//!   winner can be confirmed minimal over the certified search space;
//! * **bounds** — a degraded `[lower, upper]` answer with the analytic
//!   ladder step that produced it;
//! * **sizing** — the per-nest MWS + live-through terms reproducing the
//!   scratchpad `max_k` arithmetic;
//! * **fusion** — the strict-decrease chain of accepted fusion steps.
//!
//! Certificates serialize to deterministic NDJSON ([`Certificate::to_json_line`])
//! and parse back bit-identically ([`parse_certificates`]), so they can be
//! shipped alongside build artifacts and re-audited offline with
//! `loopmem verify --cert`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cert;
pub mod check;
pub mod replay;

pub use cert::{
    parse_certificates, BoundsCert, Certificate, ConePruneCert, DistanceImage, FrontierEntry,
    FusionCert, FusionStep, LegalityCert, OptimalityCert, PrunedBox, SizingCert, SizingTerm,
};
pub use check::{check_certificate, check_certificates, Violation};
pub use replay::{nest_mws, replay_program, union_box_upper, ProgramReplay, REPLAY_CAP};

#[cfg(test)]
mod trusted_base {
    /// The crate graph *is* the trusted-base argument (DESIGN.md §14):
    /// the checker must not link the searches it audits. Pin the
    /// manifest so a convenience dependency on core or analyze cannot
    /// sneak in without tripping CI.
    #[test]
    fn checker_does_not_depend_on_the_search_code() {
        let manifest = include_str!("../Cargo.toml");
        assert!(
            !manifest.contains("loopmem-core"),
            "loopmem-verify must not depend on loopmem-core"
        );
        assert!(
            !manifest.contains("loopmem-analyze"),
            "loopmem-verify must not depend on loopmem-analyze"
        );
        assert!(
            !manifest.contains("loopmem-sim"),
            "loopmem-verify must replay iterations itself, not via loopmem-sim"
        );
    }
}
