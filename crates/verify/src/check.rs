//! The independent certificate checker.
//!
//! [`check_certificates`] re-derives every claim from the certificate plus
//! the source program: dependence distances come from a fresh
//! `loopmem-dep` analysis, matrix products from `loopmem-linalg`, the
//! cone-prune interval division is replayed locally, and — for nests small
//! enough to enumerate — MWS and sizing claims are cross-checked against
//! the exact polyhedral counting path in [`crate::replay`]. Nothing here
//! calls into `loopmem-core`: the searches being audited are not part of
//! the trusted base (DESIGN.md §14).
//!
//! Violations carry stable `LM7xxx` codes, rendered by the CLI with the
//! same caret machinery as the static lints:
//!
//! | code | meaning |
//! |------|---------|
//! | `LM7001` | legality claim fails (`T·δ` not lex-positive / not `≥ 0` under a tileable claim / `T` not unimodular) |
//! | `LM7002` | recorded distance set or `T·δ` evaluations disagree with re-derivation |
//! | `LM7003` | cone-prune certificate unsound (direction not primitive-tileable, not spanning, or a discarded box meets the line) |
//! | `LM7004` | optimality violation (winner missing, not minimal, frontier entry illegal, or replay disagrees) |
//! | `LM7005` | bounds certificate invalid (empty interval, unknown ladder step, or the interval excludes the replayed/boxed answer) |
//! | `LM7006` | sizing or fusion arithmetic mismatch (the `max_k` formula, replayed tables, or the strict-decrease chain fail) |
//! | `LM7007` | malformed certificate (bad shape, out-of-range nest index) |

use crate::cert::{
    BoundsCert, Certificate, ConePruneCert, FusionCert, LegalityCert, OptimalityCert, SizingCert,
};
use crate::replay;
use loopmem_dep::{analyze, constraining_distances, lex_positive, row_tileable};
use loopmem_ir::{LoopNest, Program};
use loopmem_linalg::gcd::{div_ceil, div_floor};
use loopmem_linalg::{gcd_i64, IMat};

/// One failed certificate check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stable violation code (`LM7001`–`LM7007`).
    pub code: &'static str,
    /// Index of the nest the certificate is about, when it names one.
    pub nest: Option<usize>,
    /// What failed.
    pub message: String,
    /// Supporting detail (expected vs. recorded values).
    pub notes: Vec<String>,
}

impl Violation {
    fn new(code: &'static str, nest: Option<usize>, message: impl Into<String>) -> Self {
        Violation {
            code,
            nest,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }
}

/// The bounds-method vocabulary a certificate may claim.
const METHODS: &[&str] = &[
    "exact",
    "union-box",
    "closed-form",
    "partial-program",
    "salvaged-prefix",
];

/// Checks every certificate against the program, re-deriving all claims.
/// Returns the violations in certificate order (empty = all valid).
pub fn check_certificates(program: &Program, certs: &[Certificate]) -> Vec<Violation> {
    let mut out = Vec::new();
    for cert in certs {
        out.extend(check_certificate(program, cert));
    }
    out
}

/// Checks one certificate. See [`check_certificates`].
pub fn check_certificate(program: &Program, cert: &Certificate) -> Vec<Violation> {
    match cert {
        Certificate::Legality(c) => check_legality(program, c),
        Certificate::ConePrune(c) => check_cone_prune(program, c),
        Certificate::Optimality(c) => check_optimality(program, c),
        Certificate::Bounds(c) => check_bounds(program, c),
        Certificate::Sizing(c) => check_sizing(program, c),
        Certificate::Fusion(c) => check_fusion(program, c),
    }
}

fn nest_of(program: &Program, k: usize) -> Result<&LoopNest, Violation> {
    program.nests().get(k).ok_or_else(|| {
        Violation::new(
            "LM7007",
            Some(k),
            format!(
                "certificate names nest {k}, but the program has {} nests",
                program.len()
            ),
        )
    })
}

fn to_imat(rows: &[Vec<i64>], n: usize) -> Option<IMat> {
    if rows.len() != n || rows.iter().any(|r| r.len() != n) {
        return None;
    }
    Some(IMat::from_rows(rows))
}

fn check_legality(program: &Program, c: &LegalityCert) -> Vec<Violation> {
    let nest = match nest_of(program, c.nest) {
        Ok(n) => n,
        Err(v) => return vec![v],
    };
    let n = nest.depth();
    let t = match to_imat(&c.transform, n) {
        Some(t) => t,
        None => {
            return vec![Violation::new(
                "LM7007",
                Some(c.nest),
                format!("legality transform is not a {n}x{n} matrix"),
            )]
        }
    };
    let mut out = Vec::new();
    if t.det().abs() != 1 {
        out.push(
            Violation::new("LM7001", Some(c.nest), "transformation is not unimodular")
                .note(format!("det = {}", t.det())),
        );
    }

    // Re-derive the constraining distance set and compare.
    let deps = analyze(nest);
    let expected = constraining_distances(&deps);
    let mut recorded: Vec<Vec<i64>> = c.evaluations.iter().map(|e| e.distance.clone()).collect();
    recorded.sort();
    recorded.dedup();
    if recorded != expected {
        out.push(
            Violation::new(
                "LM7002",
                Some(c.nest),
                "recorded distance set disagrees with dependence re-analysis",
            )
            .note(format!("re-derived: {expected:?}"))
            .note(format!("recorded : {recorded:?}")),
        );
        return out;
    }

    // Recompute every T·δ and check the recorded image and the claim.
    for e in &c.evaluations {
        if e.distance.len() != n {
            out.push(Violation::new(
                "LM7007",
                Some(c.nest),
                format!("distance {:?} has wrong dimension", e.distance),
            ));
            continue;
        }
        let image = t.mul_vec(&e.distance);
        if image != e.image {
            out.push(
                Violation::new(
                    "LM7002",
                    Some(c.nest),
                    format!("recorded image of distance {:?} is not T*d", e.distance),
                )
                .note(format!("recomputed: {image:?}"))
                .note(format!("recorded  : {:?}", e.image)),
            );
            continue;
        }
        if c.tileable && image.iter().any(|&x| x < 0) {
            out.push(Violation::new(
                "LM7001",
                Some(c.nest),
                format!(
                    "tileable claim fails: T*{:?} = {image:?} has a negative component",
                    e.distance
                ),
            ));
        } else if !lex_positive(&image) {
            out.push(Violation::new(
                "LM7001",
                Some(c.nest),
                format!(
                    "legality fails: T*{:?} = {image:?} is not lexicographically positive",
                    e.distance
                ),
            ));
        }
    }
    out
}

/// The nonzero-integer `t` range with `t*v` inside `[lo, hi]`, intersected
/// over both axes. `None` means the box misses the line entirely.
fn line_hits_box(v: &[i64], alo: i64, ahi: i64, blo: i64, bhi: i64) -> bool {
    let mut tlo = i64::MIN / 4;
    let mut thi = i64::MAX / 4;
    for (&vi, (lo, hi)) in v.iter().zip([(alo, ahi), (blo, bhi)]) {
        if vi == 0 {
            if lo > 0 || hi < 0 {
                return false;
            }
        } else if vi > 0 {
            tlo = tlo.max(div_ceil(lo, vi));
            thi = thi.min(div_floor(hi, vi));
        } else {
            tlo = tlo.max(div_ceil(hi, vi));
            thi = thi.min(div_floor(lo, vi));
        }
    }
    if tlo > thi {
        return false;
    }
    // The box meets the line at some integer t; only t = 0 (the excluded
    // zero row) does not certify a tileable candidate inside the box.
    (tlo, thi) != (0, 0)
}

fn check_cone_prune(program: &Program, c: &ConePruneCert) -> Vec<Violation> {
    let nest = match nest_of(program, c.nest) {
        Ok(n) => n,
        Err(v) => return vec![v],
    };
    if nest.depth() != 2 || c.direction.len() != 2 {
        return vec![Violation::new(
            "LM7007",
            Some(c.nest),
            "cone-prune certificates cover 2-deep nests with a 2-component direction",
        )];
    }
    if c.bound < 1 {
        return vec![Violation::new(
            "LM7007",
            Some(c.nest),
            format!("cone-prune bound {} is not positive", c.bound),
        )];
    }
    let (v1, v2) = (c.direction[0], c.direction[1]);
    let mut out = Vec::new();
    if (v1, v2) == (0, 0) || gcd_i64(v1.abs(), v2.abs()) != 1 {
        out.push(Violation::new(
            "LM7003",
            Some(c.nest),
            format!("direction ({v1}, {v2}) is not a primitive vector"),
        ));
        return out;
    }
    let deps = analyze(nest);
    if !row_tileable(&c.direction, &deps) {
        out.push(Violation::new(
            "LM7003",
            Some(c.nest),
            format!("direction ({v1}, {v2}) is not itself a tileable row"),
        ));
    }
    // Rank-1 spanning claim: every tileable row in the certified box is
    // collinear with the direction. This is the load-bearing half — if any
    // off-line tileable row exists, discarding boxes off the line can
    // discard the optimum.
    'scan: for a in -c.bound..=c.bound {
        for b in -c.bound..=c.bound {
            if (a, b) == (0, 0) || !row_tileable(&[a, b], &deps) {
                continue;
            }
            if a * v2 != b * v1 {
                out.push(
                    Violation::new(
                        "LM7003",
                        Some(c.nest),
                        format!("tileable row ({a}, {b}) lies off the certified line"),
                    )
                    .note(format!("certified direction: ({v1}, {v2})")),
                );
                break 'scan;
            }
        }
    }
    // Interval-division argument per discarded box: a sound prune never
    // discards a box containing a nonzero multiple of the direction.
    for bx in &c.boxes {
        if bx.alo > bx.ahi || bx.blo > bx.bhi {
            out.push(Violation::new(
                "LM7007",
                Some(c.nest),
                format!(
                    "pruned box [{}, {}] x [{}, {}] is malformed",
                    bx.alo, bx.ahi, bx.blo, bx.bhi
                ),
            ));
            continue;
        }
        if line_hits_box(&c.direction, bx.alo, bx.ahi, bx.blo, bx.bhi) {
            out.push(
                Violation::new(
                    "LM7003",
                    Some(c.nest),
                    format!(
                        "discarded box [{}, {}] x [{}, {}] contains a candidate on the line",
                        bx.alo, bx.ahi, bx.blo, bx.bhi
                    ),
                )
                .note(format!("direction ({v1}, {v2}) passes through the box")),
            );
        }
    }
    out
}

fn check_optimality(program: &Program, c: &OptimalityCert) -> Vec<Violation> {
    let nest = match nest_of(program, c.nest) {
        Ok(n) => n,
        Err(v) => return vec![v],
    };
    let n = nest.depth();
    let mut out = Vec::new();
    if c.frontier.is_empty() {
        return vec![Violation::new(
            "LM7004",
            Some(c.nest),
            "optimality certificate has an empty frontier",
        )];
    }
    let deps = analyze(nest);
    let identity: Vec<Vec<i64>> = (0..n)
        .map(|i| (0..n).map(|j| i64::from(i == j)).collect())
        .collect();
    let mut winner_seen = false;
    let mut identity_seen = false;
    let mut min_mws = u64::MAX;
    for f in &c.frontier {
        let t = match to_imat(&f.transform, n) {
            Some(t) => t,
            None => {
                out.push(Violation::new(
                    "LM7007",
                    Some(c.nest),
                    format!(
                        "frontier transform {:?} is not a {n}x{n} matrix",
                        f.transform
                    ),
                ));
                continue;
            }
        };
        if t.det().abs() != 1 {
            out.push(Violation::new(
                "LM7004",
                Some(c.nest),
                format!("frontier transform {:?} is not unimodular", f.transform),
            ));
        } else if !loopmem_dep::is_legal(&t, &deps) {
            out.push(Violation::new(
                "LM7004",
                Some(c.nest),
                format!(
                    "frontier transform {:?} is not legal for the nest's dependences",
                    f.transform
                ),
            ));
        }
        min_mws = min_mws.min(f.mws);
        if f.transform == c.transform {
            winner_seen = true;
            if f.mws != c.mws_after {
                out.push(
                    Violation::new(
                        "LM7004",
                        Some(c.nest),
                        "winner's frontier value disagrees with mws_after",
                    )
                    .note(format!("frontier: {}, claimed: {}", f.mws, c.mws_after)),
                );
            }
        }
        if f.transform == identity {
            identity_seen = true;
            if f.mws != c.mws_before {
                out.push(
                    Violation::new(
                        "LM7004",
                        Some(c.nest),
                        "identity's frontier value disagrees with mws_before",
                    )
                    .note(format!("frontier: {}, claimed: {}", f.mws, c.mws_before)),
                );
            }
        }
    }
    if !winner_seen {
        out.push(Violation::new(
            "LM7004",
            Some(c.nest),
            "the chosen transformation is not on the evaluated frontier",
        ));
    }
    if !identity_seen {
        out.push(Violation::new(
            "LM7004",
            Some(c.nest),
            "the identity baseline is not on the evaluated frontier",
        ));
    }
    if c.mws_after != min_mws {
        out.push(
            Violation::new(
                "LM7004",
                Some(c.nest),
                "the claimed minimum is not the frontier minimum",
            )
            .note(format!(
                "frontier minimum: {min_mws}, claimed: {}",
                c.mws_after
            )),
        );
    }
    // Exact cross-check against the polyhedral counting path when the
    // nest is small enough to enumerate.
    if out.is_empty() {
        if let Some(exact_before) = replay::nest_mws(nest, replay::REPLAY_CAP) {
            if exact_before != c.mws_before {
                out.push(
                    Violation::new(
                        "LM7004",
                        Some(c.nest),
                        "mws_before disagrees with exact replay",
                    )
                    .note(format!(
                        "replayed: {exact_before}, claimed: {}",
                        c.mws_before
                    )),
                );
            }
            if let Some(t) = to_imat(&c.transform, n) {
                match replay::apply_transform(nest, &t)
                    .and_then(|tn| replay::nest_mws(&tn, replay::REPLAY_CAP))
                {
                    Some(exact_after) if exact_after != c.mws_after => {
                        out.push(
                            Violation::new(
                                "LM7004",
                                Some(c.nest),
                                "mws_after disagrees with exact replay of the transformed nest",
                            )
                            .note(format!("replayed: {exact_after}, claimed: {}", c.mws_after)),
                        );
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

fn check_bounds(program: &Program, c: &BoundsCert) -> Vec<Violation> {
    let mut out = Vec::new();
    if !METHODS.contains(&c.method.as_str()) {
        out.push(Violation::new(
            "LM7005",
            c.nest,
            format!("unknown bounds method '{}'", c.method),
        ));
    }
    if c.lower > c.upper {
        out.push(
            Violation::new(
                "LM7005",
                c.nest,
                "bounds certificate claims an empty interval",
            )
            .note(format!("lower {} > upper {}", c.lower, c.upper)),
        );
    }
    if c.method == "exact" && c.lower != c.upper {
        out.push(Violation::new(
            "LM7005",
            c.nest,
            "an 'exact' bounds certificate must pin a single value",
        ));
    }
    match c.quantity.as_str() {
        "nest-mws" => {
            let k = match c.nest {
                Some(k) => k,
                None => {
                    out.push(Violation::new(
                        "LM7007",
                        None,
                        "nest-mws bounds certificate names no nest",
                    ));
                    return out;
                }
            };
            let nest = match nest_of(program, k) {
                Ok(n) => n,
                Err(v) => {
                    out.push(v);
                    return out;
                }
            };
            if let Some(exact) = replay::nest_mws(nest, replay::REPLAY_CAP) {
                if !(c.lower <= exact && exact <= c.upper) {
                    out.push(
                        Violation::new(
                            "LM7005",
                            c.nest,
                            "interval excludes the exact replayed MWS",
                        )
                        .note(format!(
                            "exact MWS: {exact}, claimed: [{}, {}]",
                            c.lower, c.upper
                        )),
                    );
                }
            } else if let Some(cap) = replay::union_box_upper(nest) {
                if c.lower > cap {
                    out.push(
                        Violation::new(
                            "LM7005",
                            c.nest,
                            "claimed lower bound exceeds the union-box cap on the MWS",
                        )
                        .note(format!("union-box cap: {cap}, claimed lower: {}", c.lower)),
                    );
                }
            }
        }
        "program-words" => {
            if let Some(r) = replay::replay_program(program, replay::REPLAY_CAP) {
                let words = replayed_words(&r);
                if !(c.lower <= words && words <= c.upper) {
                    out.push(
                        Violation::new(
                            "LM7005",
                            c.nest,
                            "interval excludes the replayed scratchpad size",
                        )
                        .note(format!(
                            "replayed words: {words}, claimed: [{}, {}]",
                            c.lower, c.upper
                        )),
                    );
                }
            }
        }
        other => {
            out.push(Violation::new(
                "LM7005",
                c.nest,
                format!("unknown bounded quantity '{other}'"),
            ));
        }
    }
    out
}

/// The `max_k` scratchpad formula over replayed tables.
fn replayed_words(r: &replay::ProgramReplay) -> u64 {
    let nest_term = r
        .per_nest_mws
        .iter()
        .zip(&r.live_through)
        .map(|(&m, &l)| m.saturating_add(l))
        .max()
        .unwrap_or(0);
    let boundary_term = r.boundary_live.iter().copied().max().unwrap_or(0);
    nest_term.max(boundary_term)
}

fn check_sizing(program: &Program, c: &SizingCert) -> Vec<Violation> {
    let mut out = Vec::new();
    if c.per_nest.len() != program.len() {
        return vec![Violation::new(
            "LM7007",
            None,
            format!(
                "sizing certificate has {} per-nest terms for a {}-nest program",
                c.per_nest.len(),
                program.len()
            ),
        )];
    }
    if c.boundary_live.len() + 1 != program.len().max(1) {
        return vec![Violation::new(
            "LM7007",
            None,
            format!(
                "sizing certificate has {} boundary terms for a {}-nest program",
                c.boundary_live.len(),
                program.len()
            ),
        )];
    }
    // Reproduce the max_k arithmetic from the recorded terms.
    let terms: Vec<u64> = c
        .per_nest
        .iter()
        .map(|t| t.mws.saturating_add(t.live_through))
        .collect();
    let nest_term = terms.iter().copied().max().unwrap_or(0);
    let boundary_term = c.boundary_live.iter().copied().max().unwrap_or(0);
    let words = nest_term.max(boundary_term);
    if words != c.words {
        out.push(
            Violation::new(
                "LM7006",
                None,
                "claimed words disagree with the max_k arithmetic",
            )
            .note(format!("recomputed: {words}, claimed: {}", c.words)),
        );
    }
    match terms.get(c.peak_nest) {
        Some(&peak) if peak == nest_term => {}
        _ => {
            out.push(Violation::new(
                "LM7006",
                Some(c.peak_nest),
                "peak_nest does not achieve the maximal per-nest term",
            ));
        }
    }
    // Cross-check every recorded table against exact program replay.
    if let Some(r) = replay::replay_program(program, replay::REPLAY_CAP) {
        for (k, (term, &exact)) in c.per_nest.iter().zip(&r.per_nest_mws).enumerate() {
            if term.mws != exact {
                out.push(
                    Violation::new(
                        "LM7006",
                        Some(k),
                        format!("nest {k} MWS term disagrees with exact replay"),
                    )
                    .note(format!("replayed: {exact}, recorded: {}", term.mws)),
                );
            }
        }
        for (k, (term, &exact)) in c.per_nest.iter().zip(&r.live_through).enumerate() {
            if term.live_through != exact {
                out.push(
                    Violation::new(
                        "LM7006",
                        Some(k),
                        format!("nest {k} live-through term disagrees with exact replay"),
                    )
                    .note(format!(
                        "replayed: {exact}, recorded: {}",
                        term.live_through
                    )),
                );
            }
        }
        if c.boundary_live != r.boundary_live {
            out.push(
                Violation::new(
                    "LM7006",
                    None,
                    "boundary live counts disagree with exact replay",
                )
                .note(format!("replayed: {:?}", r.boundary_live))
                .note(format!("recorded: {:?}", c.boundary_live)),
            );
        }
    }
    out
}

/// The checker's own conformability-gated fusion of adjacent nests: both
/// rectangular with identical ranges, statements concatenated. Legality
/// beyond conformability is re-established by replaying the *sizing* of
/// each intermediate program, which only needs the access stream.
fn mini_fuse(nests: &[LoopNest], at: usize) -> Option<Vec<LoopNest>> {
    let a = nests.get(at)?;
    let b = nests.get(at + 1)?;
    let ra = a.rectangular_ranges()?;
    let rb = b.rectangular_ranges()?;
    if ra != rb {
        return None;
    }
    let mut statements = a.statements().to_vec();
    statements.extend(b.statements().iter().cloned());
    let fused = LoopNest::new(a.loops().to_vec(), a.arrays().to_vec(), statements).ok()?;
    let mut out = nests.to_vec();
    out.remove(at + 1);
    out[at] = fused;
    Some(out)
}

fn check_fusion(program: &Program, c: &FusionCert) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut expected_before = c.unfused;
    for (i, s) in c.steps.iter().enumerate() {
        if s.before != expected_before {
            out.push(
                Violation::new(
                    "LM7006",
                    None,
                    format!("fusion step {} breaks the words chain", i + 1),
                )
                .note(format!(
                    "previous words: {expected_before}, step claims before: {}",
                    s.before
                )),
            );
        }
        if s.after >= s.before {
            out.push(
                Violation::new(
                    "LM7006",
                    None,
                    format!("fusion step {} is not a strict decrease", i + 1),
                )
                .note(format!("{} -> {}", s.before, s.after)),
            );
        }
        expected_before = s.after;
    }
    if expected_before != c.fused {
        out.push(
            Violation::new("LM7006", None, "fused words disagree with the final step").note(
                format!(
                    "chain ends at {expected_before}, claimed fused: {}",
                    c.fused
                ),
            ),
        );
    }
    if c.steps.is_empty() && c.fused != c.unfused {
        out.push(Violation::new(
            "LM7006",
            None,
            "no fusion steps were taken but fused != unfused",
        ));
    }
    if !out.is_empty() {
        return out;
    }
    // Structurally replay the fusion chain and re-size each intermediate
    // program; skipped when any stage exceeds the replay cap.
    let mut nests: Vec<LoopNest> = program.nests().to_vec();
    let words_of = |nests: &[LoopNest]| -> Option<u64> {
        let p = Program::new(nests.to_vec()).ok()?;
        replay::replay_program(&p, replay::REPLAY_CAP).map(|r| replayed_words(&r))
    };
    if let Some(w) = words_of(&nests) {
        if w != c.unfused {
            out.push(
                Violation::new("LM7006", None, "unfused words disagree with exact replay")
                    .note(format!("replayed: {w}, claimed: {}", c.unfused)),
            );
            return out;
        }
    } else {
        return out;
    }
    for (i, s) in c.steps.iter().enumerate() {
        nests = match mini_fuse(&nests, s.at) {
            Some(n) => n,
            None => {
                out.push(Violation::new(
                    "LM7006",
                    None,
                    format!(
                        "fusion step {} fuses non-conformable nests at boundary {}",
                        i + 1,
                        s.at
                    ),
                ));
                return out;
            }
        };
        match words_of(&nests) {
            Some(w) if w != s.after => {
                out.push(
                    Violation::new(
                        "LM7006",
                        None,
                        format!("fusion step {} words disagree with exact replay", i + 1),
                    )
                    .note(format!("replayed: {w}, claimed after: {}", s.after)),
                );
                return out;
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{DistanceImage, FrontierEntry, PrunedBox, SizingTerm};
    use loopmem_ir::parse_program;

    fn example8_program() -> Program {
        parse_program(
            "array X[200]\n\
             for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        )
        .unwrap()
    }

    fn example8_legality() -> LegalityCert {
        // Distances (2,0), (3,-2), (5,-2) in sorted order; T = [[2,3],[1,1]].
        LegalityCert {
            nest: 0,
            transform: vec![vec![2, 3], vec![1, 1]],
            evaluations: vec![
                DistanceImage {
                    distance: vec![2, 0],
                    image: vec![4, 2],
                },
                DistanceImage {
                    distance: vec![3, -2],
                    image: vec![0, 1],
                },
                DistanceImage {
                    distance: vec![5, -2],
                    image: vec![4, 3],
                },
            ],
            tileable: true,
        }
    }

    #[test]
    fn valid_legality_certificate_passes() {
        let p = example8_program();
        let cert = Certificate::Legality(example8_legality());
        assert_eq!(check_certificates(&p, &[cert]), vec![]);
    }

    #[test]
    fn tampered_image_is_rejected() {
        let p = example8_program();
        let mut c = example8_legality();
        c.evaluations[1].image = vec![1, 0];
        let v = check_certificate(&p, &Certificate::Legality(c));
        assert!(v.iter().any(|v| v.code == "LM7002"), "{v:?}");
    }

    #[test]
    fn missing_distance_is_rejected() {
        let p = example8_program();
        let mut c = example8_legality();
        c.evaluations.remove(0);
        let v = check_certificate(&p, &Certificate::Legality(c));
        assert!(v.iter().any(|v| v.code == "LM7002"), "{v:?}");
    }

    #[test]
    fn illegal_transform_is_rejected() {
        // T = [[2,3],[1,2]] (the paper's misprinted completion) maps
        // (3,-2) to (0,-1): not even lexicographically legal.
        let p = example8_program();
        let mut c = example8_legality();
        c.transform = vec![vec![2, 3], vec![1, 2]];
        c.evaluations[0].image = vec![4, 2];
        c.evaluations[1].image = vec![0, -1];
        c.evaluations[2].image = vec![4, 1];
        let v = check_certificate(&p, &Certificate::Legality(c));
        assert!(v.iter().any(|v| v.code == "LM7001"), "{v:?}");
    }

    fn cone_program() -> Program {
        parse_program(
            "array A[100][100]\n\
             for i = 2 to 99 {\n\
               for j = 4 to 97 {\n\
                 A[i][j] = A[i-1][j+3] + A[i-1][j-3];\n\
               }\n\
             }",
        )
        .unwrap()
    }

    #[test]
    fn sound_cone_prune_passes_and_line_hit_fails() {
        let p = cone_program();
        // Distances (1,3) and (1,-3): only multiples of (1,0) are tileable
        // in [-2,2]^2. A box strictly above the a-axis misses the line.
        let good = ConePruneCert {
            nest: 0,
            bound: 2,
            direction: vec![1, 0],
            boxes: vec![PrunedBox {
                alo: -2,
                ahi: 2,
                blo: 1,
                bhi: 2,
            }],
        };
        assert_eq!(
            check_certificate(&p, &Certificate::ConePrune(good.clone())),
            vec![]
        );
        // A box containing (2, 0) sits on the line: discarding it is unsound.
        let mut bad = good;
        bad.boxes.push(PrunedBox {
            alo: 1,
            ahi: 2,
            blo: 0,
            bhi: 1,
        });
        let v = check_certificate(&p, &Certificate::ConePrune(bad));
        assert!(v.iter().any(|v| v.code == "LM7003"), "{v:?}");
    }

    #[test]
    fn non_spanning_direction_is_rejected() {
        // Example 8's cone has rank 2: no single direction spans it.
        let p = example8_program();
        let c = ConePruneCert {
            nest: 0,
            bound: 2,
            direction: vec![1, 1],
            boxes: vec![],
        };
        let v = check_certificate(&p, &Certificate::ConePrune(c));
        assert!(v.iter().any(|v| v.code == "LM7003"), "{v:?}");
    }

    fn example8_optimality() -> OptimalityCert {
        OptimalityCert {
            nest: 0,
            mws_before: 44,
            mws_after: 21,
            transform: vec![vec![2, 3], vec![1, 1]],
            frontier: vec![
                FrontierEntry {
                    transform: vec![vec![1, 0], vec![0, 1]],
                    mws: 44,
                },
                FrontierEntry {
                    transform: vec![vec![2, 3], vec![1, 1]],
                    mws: 21,
                },
            ],
        }
    }

    #[test]
    fn valid_optimality_certificate_passes() {
        let p = example8_program();
        assert_eq!(
            check_certificate(&p, &Certificate::Optimality(example8_optimality())),
            vec![]
        );
    }

    #[test]
    fn understated_minimum_is_rejected_by_replay() {
        let p = example8_program();
        let mut c = example8_optimality();
        c.mws_after = 20;
        c.frontier[1].mws = 20;
        let v = check_certificate(&p, &Certificate::Optimality(c));
        assert!(v.iter().any(|v| v.code == "LM7004"), "{v:?}");
    }

    #[test]
    fn winner_not_minimal_is_rejected() {
        let p = example8_program();
        let mut c = example8_optimality();
        // The frontier knows a better value than the claimed winner.
        c.frontier[1].mws = 21;
        c.mws_after = 44;
        c.transform = vec![vec![1, 0], vec![0, 1]];
        let v = check_certificate(&p, &Certificate::Optimality(c));
        assert!(v.iter().any(|v| v.code == "LM7004"), "{v:?}");
    }

    #[test]
    fn bounds_must_contain_the_replayed_answer() {
        let p = example8_program();
        let good = BoundsCert {
            nest: Some(0),
            quantity: "nest-mws".into(),
            method: "union-box".into(),
            lower: 0,
            upper: 100,
            reason: "budget exhausted (max-iterations)".into(),
        };
        assert_eq!(
            check_certificate(&p, &Certificate::Bounds(good.clone())),
            vec![]
        );
        let mut bad = good.clone();
        bad.upper = 10; // excludes the exact MWS 44
        let v = check_certificate(&p, &Certificate::Bounds(bad));
        assert!(v.iter().any(|v| v.code == "LM7005"), "{v:?}");
        let mut bad = good.clone();
        bad.method = "vibes".into();
        let v = check_certificate(&p, &Certificate::Bounds(bad));
        assert!(v.iter().any(|v| v.code == "LM7005"), "{v:?}");
        let mut bad = good;
        bad.lower = 90; // empty-ish: excludes 44 from below
        let v = check_certificate(&p, &Certificate::Bounds(bad));
        assert!(v.iter().any(|v| v.code == "LM7005"), "{v:?}");
    }

    fn pipeline_program() -> Program {
        parse_program(
            "array A[16][16]\narray B[16][16]\narray C[16][16]\n\
             for i = 1 to 16 { for j = 1 to 16 { A[i][j] = B[i][j]; } }\n\
             for i = 1 to 16 { for j = 1 to 16 { C[i][j] = A[i][j] + A[i][j]; } }",
        )
        .unwrap()
    }

    #[test]
    fn sizing_certificate_replays() {
        let p = pipeline_program();
        let good = SizingCert {
            per_nest: vec![
                SizingTerm {
                    mws: 0,
                    live_through: 256,
                },
                SizingTerm {
                    mws: 0,
                    live_through: 256,
                },
            ],
            boundary_live: vec![256],
            peak_nest: 0,
            words: 256,
        };
        assert_eq!(
            check_certificate(&p, &Certificate::Sizing(good.clone())),
            vec![]
        );
        let mut bad = good.clone();
        bad.words = 255;
        let v = check_certificate(&p, &Certificate::Sizing(bad));
        assert!(v.iter().any(|v| v.code == "LM7006"), "{v:?}");
        let mut bad = good;
        bad.per_nest[1].live_through = 200;
        let v = check_certificate(&p, &Certificate::Sizing(bad));
        assert!(v.iter().any(|v| v.code == "LM7006"), "{v:?}");
    }

    #[test]
    fn fusion_certificate_replays_the_chain() {
        let p = pipeline_program();
        let good = FusionCert {
            unfused: 256,
            fused: 0,
            steps: vec![crate::cert::FusionStep {
                at: 0,
                before: 256,
                after: 0,
            }],
        };
        assert_eq!(
            check_certificate(&p, &Certificate::Fusion(good.clone())),
            vec![]
        );
        let mut bad = good.clone();
        bad.steps[0].after = 10; // not what fusing actually yields
        bad.fused = 10;
        let v = check_certificate(&p, &Certificate::Fusion(bad));
        assert!(v.iter().any(|v| v.code == "LM7006"), "{v:?}");
        let mut bad = good;
        bad.steps[0].after = 300; // not a decrease at all
        bad.fused = 300;
        let v = check_certificate(&p, &Certificate::Fusion(bad));
        assert!(v.iter().any(|v| v.code == "LM7006"), "{v:?}");
    }
}
