//! Span-accuracy tests for parser diagnostics: the reported line:col and
//! the rendered caret must land exactly on the offending token.

use loopmem_ir::parse;

/// Asserts that parsing `src` fails, that the error's span selects exactly
/// `token` in the source, that line:col agree with the span, and that the
/// rendered snippet puts its first caret in the right column.
fn assert_error_points_at(src: &str, token: &str, line: usize, col: usize) {
    let e = parse(src).expect_err("input is malformed");
    assert_eq!(e.line, line, "line for {src:?}: {e}");
    assert_eq!(e.col, col, "col for {src:?}: {e}");
    assert_eq!(
        &src[e.span.start..e.span.end],
        token,
        "span text for {src:?}: {e}"
    );
    // line:col must agree with the byte span: col is 1-based within the
    // reported line.
    let line_start = src
        .lines()
        .take(line - 1)
        .map(|l| l.len() + 1)
        .sum::<usize>();
    assert_eq!(e.span.start, line_start + col - 1, "span/col mismatch: {e}");

    // The rendered caret line underlines the token at the same column the
    // source line is printed at.
    let rendered = e.render(src);
    let lines: Vec<&str> = rendered.lines().collect();
    let src_line = lines
        .iter()
        .find(|l| l.contains(&format!("{line} |")))
        .unwrap_or_else(|| panic!("no source line in:\n{rendered}"));
    let caret_line = lines
        .iter()
        .find(|l| l.contains('^'))
        .unwrap_or_else(|| panic!("no caret line in:\n{rendered}"));
    let token_col_in_render = src_line.find(token).expect("token visible in snippet");
    assert_eq!(
        caret_line.find('^').unwrap(),
        token_col_in_render,
        "caret misaligned in:\n{rendered}"
    );
    assert_eq!(
        caret_line.matches('^').count(),
        token.len(),
        "caret width in:\n{rendered}"
    );
}

#[test]
fn caret_points_at_missing_bound_expression() {
    assert_error_points_at("array A[10]\nfor i = 1 to { A[i]; }", "{", 2, 14);
}

#[test]
fn caret_points_at_wrong_block_opener() {
    assert_error_points_at("array A[10]\nfor i = 1 to 10 ( A[i]; }", "(", 2, 17);
}

#[test]
fn caret_points_at_unclosed_subscript() {
    assert_error_points_at("array A[10]\nfor i = 1 to 10 {\n  A[i;\n}", ";", 3, 6);
}

#[test]
fn eof_error_reports_position_past_last_token() {
    let src = "array A[10]\nfor i = 1 to 10 {";
    let e = parse(src).expect_err("unclosed block");
    assert_eq!((e.line, e.col), (2, 18), "{e}");
    assert!(e.span.is_empty(), "EOF span is a point: {:?}", e.span);
    assert_eq!(e.span.start, src.len());
    let rendered = e.render(src);
    assert!(rendered.contains('^'), "{rendered}");
}
