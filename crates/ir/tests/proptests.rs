//! Property-style tests for the IR: parser robustness, affine algebra laws,
//! and bound-evaluation semantics. Deterministic (seeded `Lcg`), no
//! external dependencies.

use loopmem_ir::bounds::BoundPiece;
use loopmem_ir::{parse, Affine, Bound};
use loopmem_linalg::Lcg;

#[test]
fn parser_never_panics_on_token_soup() {
    let tokens = [
        "for", "array", "to", "{", "}", "[", "]", "=", ";", "+", "-", "*", "i", "j", "abc", "x",
        "0", "7", "42", "199",
    ];
    let mut rng = Lcg::new(0x21);
    for _ in 0..512 {
        let len = rng.range_usize(0, 40);
        let soup: Vec<&str> = (0..len).map(|_| *rng.choose(&tokens)).collect();
        // Must return Ok or Err, never panic.
        let _ = parse(&soup.join(" "));
    }
}

#[test]
fn parser_never_panics_on_arbitrary_bytes() {
    let mut rng = Lcg::new(0x22);
    for _ in 0..512 {
        let len = rng.range_usize(0, 60);
        let s: String = (0..len)
            .map(|_| char::from_u32(rng.range_i64(1, 0x2FF) as u32).unwrap_or('?'))
            .collect();
        let _ = parse(&s);
    }
}

#[test]
fn affine_add_commutes() {
    let mut rng = Lcg::new(0x23);
    for _ in 0..300 {
        let a = Affine::new(rng.ivec(3, -9, 9), rng.range_i64(-9, 9));
        let b = Affine::new(rng.ivec(3, -9, 9), rng.range_i64(-9, 9));
        let at = rng.ivec(3, -5, 5);
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&b).eval(&at), a.eval(&at) + b.eval(&at));
    }
}

#[test]
fn affine_substitution_is_evaluation_composition() {
    let mut rng = Lcg::new(0x24);
    for _ in 0..300 {
        let f = Affine::new(rng.ivec(2, -4, 4), rng.range_i64(-4, 4));
        let subs = [
            Affine::new(rng.ivec(2, -3, 3), 0),
            Affine::new(rng.ivec(2, -3, 3), 0),
        ];
        let at = rng.ivec(2, -5, 5);
        let g = f.substitute(&subs);
        let inner: Vec<i64> = subs.iter().map(|s| s.eval(&at)).collect();
        assert_eq!(g.eval(&at), f.eval(&inner));
    }
}

#[test]
fn bound_evaluation_max_min_semantics() {
    let mut rng = Lcg::new(0x25);
    for _ in 0..300 {
        let n = rng.range_usize(1, 3);
        let pieces: Vec<(i64, i64)> = (0..n)
            .map(|_| (rng.range_i64(-9, 9), rng.range_i64(1, 4)))
            .collect();
        let at = rng.range_i64(-20, 20);
        // Constant pieces over a 1-var scope, with divisors.
        let lower = Bound::from_pieces(
            pieces
                .iter()
                .map(|&(c, d)| BoundPiece {
                    expr: Affine::new(vec![0], c),
                    div: d,
                })
                .collect(),
        );
        let upper = Bound::from_pieces(
            pieces
                .iter()
                .map(|&(c, d)| BoundPiece {
                    expr: Affine::new(vec![0], c),
                    div: d,
                })
                .collect(),
        );
        let lo = lower.eval_lower(&[at]);
        let hi = upper.eval_upper(&[at]);
        // Each is bracketed by the raw quotients.
        for &(c, d) in &pieces {
            assert!(lo >= c / d - 1, "{pieces:?}");
            assert!(hi <= c / d + 1, "{pieces:?}");
        }
        let _ = (lo, hi); // total, no panic
    }
}

#[test]
fn roundtrip_with_triangular_bounds() {
    for n1 in 2i64..=9 {
        for n2 in 2i64..=9 {
            let src =
                format!("array A[9][9]\nfor i = 1 to {n1} {{ for j = i to {n2} {{ A[i][j]; }} }}");
            let nest = parse(&src).expect("triangular source parses");
            let printed = loopmem_ir::print_nest(&nest);
            assert_eq!(parse(&printed).expect("printed source parses"), nest);
        }
    }
}

#[test]
fn deeply_nested_parse_does_not_overflow() {
    // 12-deep nest: recursion in the parser must cope.
    let mut src = String::from("array A[3]\n");
    for k in 0..12 {
        src.push_str(&format!("for v{k} = 1 to 2 {{ "));
    }
    src.push_str("A[v0];");
    src.push_str(&"}".repeat(12));
    let nest = parse(&src).expect("deep nest parses");
    assert_eq!(nest.depth(), 12);
    assert_eq!(nest.iteration_count(), Some(1 << 12));
}

#[test]
fn helpful_error_messages() {
    for (src, needle) in [
        ("array A[10]\nfor i = 1 to 10 { B[i]; }", "undeclared"),
        ("array A[10]\nfor i = 1 to 10 { A[x]; }", "unknown variable"),
        (
            "array A[10]\narray A[10]\nfor i = 1 to 10 { A[i]; }",
            "redeclared",
        ),
        ("array A[0]\nfor i = 1 to 10 { A[i]; }", "positive"),
        ("for", "identifier"),
    ] {
        let err = parse(src).expect_err(src);
        assert!(
            err.message.contains(needle),
            "{src}: expected '{needle}' in '{}'",
            err.message
        );
    }
}
