//! Property tests for the IR: parser robustness, affine algebra laws, and
//! bound-evaluation semantics.

use loopmem_ir::{parse, Affine, Bound};
use loopmem_ir::bounds::BoundPiece;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parser_never_panics_on_token_soup(tokens in proptest::collection::vec(
        prop_oneof![
            Just("for".to_string()), Just("array".to_string()), Just("to".to_string()),
            Just("{".to_string()), Just("}".to_string()), Just("[".to_string()),
            Just("]".to_string()), Just("=".to_string()), Just(";".to_string()),
            Just("+".to_string()), Just("-".to_string()), Just("*".to_string()),
            "[a-z]{1,3}".prop_map(|s| s), (0u32..200).prop_map(|n| n.to_string()),
        ],
        0..40,
    )) {
        // Must return Ok or Err, never panic.
        let _ = parse(&tokens.join(" "));
    }

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(s in "\\PC*") {
        let _ = parse(&s);
    }

    #[test]
    fn affine_add_commutes(
        c1 in proptest::collection::vec(-9i64..=9, 3),
        k1 in -9i64..=9,
        c2 in proptest::collection::vec(-9i64..=9, 3),
        k2 in -9i64..=9,
        at in proptest::collection::vec(-5i64..=5, 3),
    ) {
        let a = Affine::new(c1, k1);
        let b = Affine::new(c2, k2);
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.add(&b).eval(&at), a.eval(&at) + b.eval(&at));
    }

    #[test]
    fn affine_substitution_is_evaluation_composition(
        f_coeffs in proptest::collection::vec(-4i64..=4, 2),
        f_const in -4i64..=4,
        s1 in proptest::collection::vec(-3i64..=3, 2),
        s2 in proptest::collection::vec(-3i64..=3, 2),
        at in proptest::collection::vec(-5i64..=5, 2),
    ) {
        let f = Affine::new(f_coeffs, f_const);
        let subs = [Affine::new(s1, 0), Affine::new(s2, 0)];
        let g = f.substitute(&subs);
        let inner: Vec<i64> = subs.iter().map(|s| s.eval(&at)).collect();
        prop_assert_eq!(g.eval(&at), f.eval(&inner));
    }

    #[test]
    fn bound_evaluation_max_min_semantics(
        pieces in proptest::collection::vec((-9i64..=9, 1i64..=4), 1..4),
        at in -20i64..=20,
    ) {
        // Constant pieces over a 1-var scope, with divisors.
        let lower = Bound::from_pieces(
            pieces.iter().map(|&(c, d)| BoundPiece { expr: Affine::new(vec![0], c), div: d }).collect(),
        );
        let upper = Bound::from_pieces(
            pieces.iter().map(|&(c, d)| BoundPiece { expr: Affine::new(vec![0], c), div: d }).collect(),
        );
        let lo = lower.eval_lower(&[at]);
        let hi = upper.eval_upper(&[at]);
        // max of ceils >= min of floors for the same piece set.
        prop_assert!(lo >= hi || lo <= hi); // total, no panic
        // And each is bracketed by the raw quotients.
        for &(c, d) in &pieces {
            prop_assert!(lo >= c / d - 1);
            prop_assert!(hi <= c / d + 1);
        }
    }

    #[test]
    fn roundtrip_with_triangular_bounds(n1 in 2i64..=9, n2 in 2i64..=9) {
        let src = format!(
            "array A[9][9]\nfor i = 1 to {n1} {{ for j = i to {n2} {{ A[i][j]; }} }}"
        );
        let nest = parse(&src).expect("triangular source parses");
        let printed = loopmem_ir::print_nest(&nest);
        prop_assert_eq!(parse(&printed).expect("printed source parses"), nest);
    }
}

#[test]
fn deeply_nested_parse_does_not_overflow() {
    // 12-deep nest: recursion in the parser must cope.
    let mut src = String::from("array A[3]\n");
    for k in 0..12 {
        src.push_str(&format!("for v{k} = 1 to 2 {{ "));
    }
    src.push_str("A[v0];");
    src.push_str(&"}".repeat(12));
    let nest = parse(&src).expect("deep nest parses");
    assert_eq!(nest.depth(), 12);
    assert_eq!(nest.iteration_count(), Some(1 << 12));
}

#[test]
fn helpful_error_messages() {
    for (src, needle) in [
        ("array A[10]\nfor i = 1 to 10 { B[i]; }", "undeclared"),
        ("array A[10]\nfor i = 1 to 10 { A[x]; }", "unknown variable"),
        ("array A[10]\narray A[10]\nfor i = 1 to 10 { A[i]; }", "redeclared"),
        ("array A[0]\nfor i = 1 to 10 { A[i]; }", "positive"),
        ("for", "identifier"),
    ] {
        let err = parse(src).expect_err(src);
        assert!(
            err.message.contains(needle),
            "{src}: expected '{needle}' in '{}'",
            err.message
        );
    }
}
