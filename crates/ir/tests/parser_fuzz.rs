//! Parser fuzz stress: mutated and adversarial inputs must never panic.
//!
//! The governed pipeline promises "panic-free analysis" end to end, and
//! the parser is the first stage every untrusted `.loop` file hits. This
//! test drives `parse`/`parse_program` over thousands of byte-level
//! mutations of valid kernels (seeded [`Lcg`] stream, reproducible by
//! seed) plus hand-written adversarial inputs. The only acceptable
//! failure mode is a `ParseError` value — any panic escapes the
//! `catch_unwind` and fails the test with the offending input.

use loopmem_ir::{parse, parse_program};
use loopmem_linalg::rng::Lcg;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Valid sources used as mutation seeds — one per DSL feature family.
const SEEDS: &[&str] = &[
    "array X[200]\nfor i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
    "array A[102][102]\nfor t = 1 to 2 { for i = 2 to 100 { for j = 1 to 100 { A[i][j] = A[i-1][j]; } } }",
    "array B[64]\nfor i = 1 to 8 { for j = i to 8 { B[i + j]; } }",
    "array A[40][40]\narray B[40][40]\n\
     for i = 1 to 30 { for j = 1 to 30 { A[i][j] = B[j][i]; } }\n\
     for p = 1 to 30 { for q = 1 to 30 { B[p][q] = A[p][q]; } }",
    "array X[100]\nfor i = 1 to 20 { for j = 1 to 30 { X[2i - 3j]; } }",
];

/// Hand-written adversarial inputs: coefficient/bound overflow, deep
/// nesting, unterminated constructs, junk bytes.
fn adversarial() -> Vec<String> {
    let mut v = vec![
        // Coefficients and bounds far past i64.
        "array X[10]\nfor i = 1 to 99999999999999999999999 { X[i]; }".to_string(),
        "array X[10]\nfor i = 1 to 5 { X[99999999999999999999999i]; }".to_string(),
        format!("array X[10]\nfor i = {0} to {0} {{ X[i]; }}", i64::MAX),
        format!("array X[{}]\nfor i = 1 to 2 {{ X[i]; }}", u128::MAX),
        // Unterminated / unbalanced.
        "array X[10]\nfor i = 1 to 5 { X[i];".to_string(),
        "array X[10]\nfor i = 1 to 5 } X[i]; {".to_string(),
        "array".to_string(),
        String::new(),
        // Junk.
        "\u{0}\u{1}\u{2}for for for".to_string(),
        "🦀🦀🦀 array 🦀[🦀]".to_string(),
    ];
    // 256 nested for-loops: recursion depth must be bounded or iterative.
    let mut deep = String::from("array X[10]\n");
    for k in 0..256 {
        deep.push_str(&format!("for i{k} = 1 to 2 {{ "));
    }
    deep.push_str("X[i0];");
    deep.push_str(&"} ".repeat(256));
    v.push(deep);
    // A 64-dimensional reference.
    v.push(format!(
        "array X{}\nfor i = 1 to 2 {{ X{}; }}",
        "[2]".repeat(64),
        "[i]".repeat(64)
    ));
    v
}

/// Applies 1..=8 random byte-level mutations to `src`.
fn mutate(src: &str, rng: &mut Lcg) -> String {
    let mut bytes = src.as_bytes().to_vec();
    let edits = rng.range_usize(1, 8);
    for _ in 0..edits {
        if bytes.is_empty() {
            bytes.push(rng.next_u64() as u8);
            continue;
        }
        let pos = rng.range_usize(0, bytes.len() - 1);
        match rng.range_usize(0, 3) {
            0 => bytes[pos] = rng.next_u64() as u8,
            1 => bytes.insert(pos, rng.next_u64() as u8),
            2 => {
                bytes.remove(pos);
            }
            // Duplicate a short slice (grows digit runs into overflowing
            // literals and unbalances brackets).
            _ => {
                let end = (pos + rng.range_usize(1, 16)).min(bytes.len());
                let slice: Vec<u8> = bytes[pos..end].to_vec();
                bytes.splice(pos..pos, slice);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Parses `src` with both entry points; panics (test failure) only if the
/// parser itself panics.
fn assert_no_panic(src: &str) {
    let owned = src.to_string();
    let r = catch_unwind(AssertUnwindSafe(|| {
        let _ = parse(&owned);
        let _ = parse_program(&owned);
    }));
    assert!(
        r.is_ok(),
        "parser panicked on input ({} bytes): {:?}",
        src.len(),
        &src[..src.len().min(400)]
    );
}

#[test]
fn mutated_inputs_never_panic() {
    let mut rng = Lcg::new(0x5EED_F00D);
    for trial in 0..2000 {
        let seed = SEEDS[trial % SEEDS.len()];
        let mutated = mutate(seed, &mut rng);
        assert_no_panic(&mutated);
    }
}

#[test]
fn adversarial_inputs_never_panic() {
    for src in adversarial() {
        assert_no_panic(&src);
    }
}

#[test]
fn seeds_still_parse() {
    // The mutation corpus must start from valid inputs, or the fuzz run
    // only ever exercises the error path's first line.
    for seed in SEEDS {
        parse_program(seed).expect("seed source is valid");
    }
}
