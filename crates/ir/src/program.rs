//! Programs: sequences of perfect nests over a shared array set.
//!
//! Real image/video pipelines are chains of loop nests (produce a frame,
//! filter it, consume it). The paper analyzes one nest at a time; the
//! workspace extends the same machinery across a sequence — an element
//! written by one nest and read by a later one must stay in memory across
//! the boundary, which single-nest windows cannot see.

use crate::access::ArrayDecl;
use crate::nest::{LoopNest, NestError};
use crate::parser::ParseError;
use std::fmt;

/// A sequence of perfect nests sharing one array declaration table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    arrays: Vec<ArrayDecl>,
    nests: Vec<LoopNest>,
}

/// Program-level validation failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// The program has no nests.
    Empty,
    /// A nest failed validation.
    Nest(usize, NestError),
    /// A nest's array table differs from the program's.
    ArrayTableMismatch(usize),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program has no loop nests"),
            ProgramError::Nest(k, e) => write!(f, "nest {k}: {e}"),
            ProgramError::ArrayTableMismatch(k) => {
                write!(f, "nest {k} uses a different array table")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Creates a program; every nest must carry the same array table
    /// (parse with [`crate::parse_program`] to get this for free).
    ///
    /// # Errors
    ///
    /// See [`ProgramError`].
    pub fn new(nests: Vec<LoopNest>) -> Result<Self, ProgramError> {
        let first = nests.first().ok_or(ProgramError::Empty)?;
        let arrays = first.arrays().to_vec();
        for (k, n) in nests.iter().enumerate() {
            if n.arrays() != arrays.as_slice() {
                return Err(ProgramError::ArrayTableMismatch(k));
            }
        }
        Ok(Program { arrays, nests })
    }

    /// The shared array declarations.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// The nests, in execution order.
    pub fn nests(&self) -> &[LoopNest] {
        &self.nests
    }

    /// Number of nests.
    pub fn len(&self) -> usize {
        self.nests.len()
    }

    /// `true` when the program has no nests (never, post-validation).
    pub fn is_empty(&self) -> bool {
        self.nests.is_empty()
    }

    /// Total declared elements (the *default* memory of the whole
    /// program).
    pub fn default_memory(&self) -> i64 {
        self.arrays.iter().map(ArrayDecl::size).sum()
    }

    /// Replaces nest `k` (e.g. with an optimized version). The new nest
    /// must reference the same arrays.
    ///
    /// # Errors
    ///
    /// [`ProgramError::ArrayTableMismatch`] when the tables differ.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn with_nest(&self, k: usize, nest: LoopNest) -> Result<Program, ProgramError> {
        assert!(k < self.nests.len(), "nest index out of range");
        if nest.arrays() != self.arrays.as_slice() {
            return Err(ProgramError::ArrayTableMismatch(k));
        }
        let mut nests = self.nests.clone();
        nests[k] = nest;
        Program::new(nests)
    }
}

/// Parses a program: shared `array` declarations followed by one or more
/// sequential `for` nests.
///
/// ```
/// let prog = loopmem_ir::parse_program(r#"
///     array A[16][16]
///     array B[16][16]
///     for i = 1 to 16 { for j = 1 to 16 { A[i][j] = A[i][j] + 1; } }
///     for i = 1 to 16 { for j = 1 to 16 { B[i][j] = A[j][i]; } }
/// "#).unwrap();
/// assert_eq!(prog.len(), 2);
/// ```
///
/// # Errors
///
/// Returns a [`ParseError`] for syntax errors or program-level validation
/// failures.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    parse_program_spanned(src).map(|(p, _)| p)
}

/// Like [`parse_program`], but additionally returns one
/// [`NestSpans`](crate::span::NestSpans) table per nest (in execution
/// order), anchoring diagnostics to the source text.
///
/// # Errors
///
/// Same as [`parse_program`].
pub fn parse_program_spanned(
    src: &str,
) -> Result<(Program, Vec<crate::span::NestSpans>), ParseError> {
    let parsed = crate::parser::parse_many(src)?;
    let mut nests = Vec::with_capacity(parsed.len());
    let mut spans = Vec::with_capacity(parsed.len());
    for (nest, s) in parsed {
        nests.push(nest);
        spans.push(s);
    }
    let program = Program::new(nests)
        .map_err(|e| ParseError::at(1, 1, crate::span::Span::point(0), e.to_string()))?;
    Ok((program, spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    const TWO_PHASE: &str = "array A[8][8]\narray B[8][8]\n\
        for i = 1 to 8 { for j = 1 to 8 { A[i][j] = A[i][j] + 1; } }\n\
        for i = 1 to 8 { for j = 1 to 8 { B[i][j] = A[i][j] + A[i][j]; } }";

    #[test]
    fn parses_two_phase_program() {
        let p = parse_program(TWO_PHASE).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.default_memory(), 128);
        assert_eq!(p.nests()[0].depth(), 2);
    }

    #[test]
    fn single_nest_program_matches_parse() {
        let src = "array A[8]\nfor i = 1 to 8 { A[i]; }";
        let p = parse_program(src).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.nests()[0], parse(src).unwrap());
    }

    #[test]
    fn with_nest_replaces_and_validates() {
        let p = parse_program(TWO_PHASE).unwrap();
        let replacement = p.nests()[0].clone();
        let q = p.with_nest(1, replacement).unwrap();
        assert_eq!(q.nests()[0], q.nests()[1]);
        // A nest over different arrays is rejected.
        let other = parse("array Z[8]\nfor i = 1 to 8 { Z[i]; }").unwrap();
        assert_eq!(
            p.with_nest(0, other).unwrap_err(),
            ProgramError::ArrayTableMismatch(0)
        );
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(Program::new(vec![]).unwrap_err(), ProgramError::Empty);
    }
}
