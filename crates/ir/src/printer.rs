//! Pretty-printer: renders a [`LoopNest`] back as DSL-style source.
//!
//! Transformed nests produced by the optimizer have max/min bounds with
//! integer divisions; the printer renders them with explicit `max(...)`,
//! `min(...)`, `ceil(...)` and `floor(...)` so the output documents exactly
//! what the generated loop executes.

use crate::access::AccessKind;
use crate::bounds::Bound;
use crate::nest::LoopNest;
use crate::program::Program;
use std::fmt::Write as _;

/// Renders the nest as indented pseudo-source.
///
/// ```
/// let nest = loopmem_ir::parse(
///     "array A[100][100]
///      for i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j+2]; } }",
/// ).unwrap();
/// let text = loopmem_ir::print_nest(&nest);
/// assert!(text.contains("for i = 1 to 10 {"));
/// assert!(text.contains("A[i - 1][j + 2]"));
/// ```
pub fn print_nest(nest: &LoopNest) -> String {
    let mut out = String::new();
    let names = nest.var_names();
    for a in nest.arrays() {
        let dims: String = a.dims.iter().map(|d| format!("[{d}]")).collect();
        writeln!(out, "array {}{}", a.name, dims).expect("string write");
    }
    for (k, l) in nest.loops().iter().enumerate() {
        let indent = "  ".repeat(k);
        writeln!(
            out,
            "{indent}for {} = {} to {} {{",
            l.var,
            bound_str(&l.lower, &names, true),
            bound_str(&l.upper, &names, false),
        )
        .expect("string write");
    }
    let body_indent = "  ".repeat(nest.depth());
    for s in nest.statements() {
        let mut line = String::new();
        let refs = s.refs();
        let is_assignment = refs[0].kind == AccessKind::Write;
        for (idx, r) in refs.iter().enumerate() {
            if idx == 1 && is_assignment {
                line.push_str(" = ");
            } else if idx > 1 || (idx == 1 && !is_assignment) {
                line.push_str(" + ");
            }
            let name = &nest.array(r.array).name;
            line.push_str(name);
            for sub in r.subscripts() {
                let _ = write!(line, "[{}]", sub.display_with(&names));
            }
        }
        if is_assignment && refs.len() == 1 {
            line.push_str(" = 0");
        }
        writeln!(out, "{body_indent}{line};").expect("string write");
    }
    for k in (0..nest.depth()).rev() {
        writeln!(out, "{}}}", "  ".repeat(k)).expect("string write");
    }
    out
}

/// Renders a whole program: shared declarations once, then each nest.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for a in program.arrays() {
        let dims: String = a.dims.iter().map(|d| format!("[{d}]")).collect();
        writeln!(out, "array {}{}", a.name, dims).expect("string write");
    }
    for nest in program.nests() {
        // Strip the per-nest array declarations the nest printer emits.
        let text = print_nest(nest);
        for line in text.lines() {
            if !line.starts_with("array ") {
                writeln!(out, "{line}").expect("string write");
            }
        }
    }
    out
}

fn bound_str(b: &Bound, names: &[String], is_lower: bool) -> String {
    let pieces: Vec<String> = b
        .pieces()
        .iter()
        .map(|p| {
            let e = p.expr.display_with(names).to_string();
            if p.div == 1 {
                e
            } else if is_lower {
                format!("ceil(({e}) / {})", p.div)
            } else {
                format!("floor(({e}) / {})", p.div)
            }
        })
        .collect();
    if pieces.len() == 1 {
        pieces.into_iter().next().expect("length checked")
    } else if is_lower {
        format!("max({})", pieces.join(", "))
    } else {
        format!("min({})", pieces.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{BoundPiece, Loop};
    use crate::expr::Affine;
    use crate::{parse, AccessKind, ArrayDecl, ArrayId, ArrayRef, Statement};
    use loopmem_linalg::IMat;

    #[test]
    fn roundtrip_through_parser() {
        let src = "array A[64][64]\n\
                   for i = 1 to 64 {\n\
                     for j = 1 to 64 {\n\
                       A[i][j] = A[i - 1][j];\n\
                     }\n\
                   }";
        let nest = parse(src).unwrap();
        let printed = print_nest(&nest);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(nest, reparsed, "print/parse must round-trip");
    }

    #[test]
    fn bare_read_statement_prints() {
        let nest =
            parse("array X[100]\nfor i = 1 to 20 { for j = 1 to 30 { X[2i - 3j]; } }").unwrap();
        let printed = print_nest(&nest);
        assert!(printed.contains("X[2*i - 3*j];"), "{printed}");
        assert_eq!(parse(&printed).unwrap(), nest);
    }

    #[test]
    fn min_max_bounds_render() {
        let lower = Bound::from_pieces(vec![
            BoundPiece::simple(Affine::constant(2, 1)),
            BoundPiece {
                expr: Affine::new(vec![1, 0], -30),
                div: 2,
            },
        ]);
        let upper = Bound::from_pieces(vec![BoundPiece {
            expr: Affine::new(vec![1, 0], 0),
            div: 3,
        }]);
        let nest = crate::LoopNest::new(
            vec![
                Loop::rectangular("u", 2, 1, 50),
                Loop {
                    var: "v".into(),
                    lower,
                    upper,
                },
            ],
            vec![ArrayDecl::new("A", vec![100])],
            vec![Statement::new(vec![ArrayRef::new(
                ArrayId(0),
                IMat::from_rows(&[vec![1, 1]]),
                vec![0],
                AccessKind::Read,
            )])],
        )
        .unwrap();
        let printed = print_nest(&nest);
        assert!(printed.contains("max(1, ceil((u - 30) / 2))"), "{printed}");
        assert!(printed.contains("to floor((u) / 3)"), "{printed}");
    }
}
