#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Loop-nest intermediate representation for the `loopmem` workspace.
//!
//! The paper analyzes *perfectly nested affine loops*: every statement sits
//! in the innermost loop, loop bounds are affine functions of enclosing loop
//! indices and constants, and every array subscript is an affine function
//! `A·I + b` of the iteration vector `I` (§2). This crate provides exactly
//! that program class:
//!
//! * [`Affine`] — affine expressions over the loop variables;
//! * [`Loop`] / [`Bound`] — loops with max-of-affine lower and
//!   min-of-affine upper bounds (what unimodular transformations produce);
//! * [`ArrayDecl`] / [`ArrayRef`] — array declarations and affine references
//!   (access matrix + offset vector);
//! * [`Statement`] / [`LoopNest`] — a validated perfect nest;
//! * [`parse`] — a small textual front end so kernels read like source code;
//! * [`printer`] — the inverse pretty-printer.
//!
//! # Example
//!
//! Example 2 of the paper as DSL text:
//!
//! ```
//! let nest = loopmem_ir::parse(r#"
//!     array A[100][100]
//!     for i = 1 to 100 {
//!       for j = 1 to 100 {
//!         A[i][j] = A[i-1][j+2];
//!       }
//!     }
//! "#).unwrap();
//! assert_eq!(nest.depth(), 2);
//! assert_eq!(nest.statements()[0].refs().len(), 2);
//! ```

pub mod access;
pub mod bounds;
pub mod error;
pub mod expr;
pub mod json;
pub mod nest;
pub mod parser;
pub mod printer;
pub mod program;
pub mod span;

pub use access::{AccessKind, ArrayDecl, ArrayId, ArrayRef, ElementBox};
pub use bounds::{Bound, Loop};
pub use error::{AnalysisError, Bounds, BoundsMethod, TripReason};
pub use expr::Affine;
pub use json::{escape_json, parse_json, Json};
pub use nest::{LoopNest, NestError, Statement};
pub use parser::{parse, parse_spanned, ParseError};
pub use printer::{print_nest, print_program};
pub use program::{parse_program, parse_program_spanned, Program, ProgramError};
pub use span::{caret_snippet, LineIndex, NestSpans, Span};
