//! Affine expressions over the loop variables of a nest.

use std::fmt;

/// An affine expression `c₀·i₀ + c₁·i₁ + … + constant` over the loop
/// variables of a nest (outermost first).
///
/// All subscripts, loop bounds, and transformed bounds in the workspace are
/// `Affine`s. The coefficient vector always has the nest's full depth;
/// variables that do not appear have coefficient zero.
///
/// ```
/// use loopmem_ir::Affine;
/// // 2i - 3j over a 2-deep nest (Example 7's access function).
/// let f = Affine::new(vec![2, -3], 0);
/// assert_eq!(f.eval(&[4, 1]), 5);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Affine {
    coeffs: Vec<i64>,
    constant: i64,
}

impl Affine {
    /// Creates an affine expression from per-variable coefficients and a
    /// constant term.
    pub fn new(coeffs: Vec<i64>, constant: i64) -> Self {
        Affine { coeffs, constant }
    }

    /// The constant expression `c` over `n` variables.
    pub fn constant(n: usize, c: i64) -> Self {
        Affine {
            coeffs: vec![0; n],
            constant: c,
        }
    }

    /// The single variable `i_k` over `n` variables.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n`.
    pub fn var(n: usize, k: usize) -> Self {
        assert!(k < n, "variable index out of range");
        let mut coeffs = vec![0; n];
        coeffs[k] = 1;
        Affine {
            coeffs,
            constant: 0,
        }
    }

    /// Per-variable coefficients (outermost loop first).
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Number of variables in scope.
    pub fn nvars(&self) -> usize {
        self.coeffs.len()
    }

    /// `true` when no variable has a non-zero coefficient.
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Evaluates at the iteration vector `iter`.
    ///
    /// # Panics
    ///
    /// Panics if `iter.len() != self.nvars()` or on overflow.
    pub fn eval(&self, iter: &[i64]) -> i64 {
        assert_eq!(iter.len(), self.coeffs.len(), "iteration vector length");
        let acc: i128 = self
            .coeffs
            .iter()
            .zip(iter)
            .map(|(&c, &x)| (c as i128) * (x as i128))
            .sum::<i128>()
            + self.constant as i128;
        acc.try_into().expect("affine eval overflow")
    }

    /// Conservative interval evaluation over a per-variable box: returns
    /// `(min, max)` of the expression when each variable `i_k` ranges over
    /// `ranges[k].0 ..= ranges[k].1`. Exact for non-empty boxes (an affine
    /// function attains its extrema at box corners).
    ///
    /// # Panics
    ///
    /// Panics if `ranges.len() != self.nvars()`, any range is inverted, or
    /// the result overflows `i64`.
    pub fn eval_interval(&self, ranges: &[(i64, i64)]) -> (i64, i64) {
        assert_eq!(ranges.len(), self.coeffs.len(), "range vector length");
        let mut lo = self.constant as i128;
        let mut hi = self.constant as i128;
        for (&c, &(rlo, rhi)) in self.coeffs.iter().zip(ranges) {
            assert!(rlo <= rhi, "inverted range {rlo}..={rhi}");
            let (a, b) = ((c as i128) * (rlo as i128), (c as i128) * (rhi as i128));
            lo += a.min(b);
            hi += a.max(b);
        }
        (
            lo.try_into().expect("interval eval overflow"),
            hi.try_into().expect("interval eval overflow"),
        )
    }

    /// Like [`Affine::eval_interval`], but clamps an overflowing endpoint to
    /// `i64::MIN`/`i64::MAX` instead of panicking. The returned interval is
    /// computed exactly in `i128` and only narrowed by the final clamp, so it
    /// still encloses every representable value the expression attains over
    /// the box; values outside `i64` cannot be produced by [`Affine::eval`]
    /// anyway (it panics first). Planning code uses this so that pathological
    /// coefficients degrade to oversized (then demoted) boxes rather than
    /// aborting the analysis.
    ///
    /// # Panics
    ///
    /// Panics if `ranges.len() != self.nvars()` or any range is inverted.
    pub fn eval_interval_saturating(&self, ranges: &[(i64, i64)]) -> (i64, i64) {
        assert_eq!(ranges.len(), self.coeffs.len(), "range vector length");
        let mut lo = self.constant as i128;
        let mut hi = self.constant as i128;
        for (&c, &(rlo, rhi)) in self.coeffs.iter().zip(ranges) {
            assert!(rlo <= rhi, "inverted range {rlo}..={rhi}");
            let (a, b) = ((c as i128) * (rlo as i128), (c as i128) * (rhi as i128));
            lo += a.min(b);
            hi += a.max(b);
        }
        let clamp = |v: i128| v.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
        (clamp(lo), clamp(hi))
    }

    /// Sum of two expressions over the same variables.
    pub fn add(&self, other: &Affine) -> Affine {
        assert_eq!(self.nvars(), other.nvars(), "variable-count mismatch");
        Affine {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(&a, &b)| a.checked_add(b).expect("affine add overflow"))
                .collect(),
            constant: self
                .constant
                .checked_add(other.constant)
                .expect("affine add overflow"),
        }
    }

    /// Scales every coefficient and the constant by `k`.
    pub fn scale(&self, k: i64) -> Affine {
        Affine {
            coeffs: self
                .coeffs
                .iter()
                .map(|&c| c.checked_mul(k).expect("affine scale overflow"))
                .collect(),
            constant: self.constant.checked_mul(k).expect("affine scale overflow"),
        }
    }

    /// Substitutes each variable `i_k` by the affine expression `subs[k]`
    /// (all over a common new variable set).
    ///
    /// This is how references are rewritten under a unimodular
    /// transformation: with `y = T·x`, each old variable `x_k` equals row
    /// `k` of `T⁻¹` applied to `y`.
    pub fn substitute(&self, subs: &[Affine]) -> Affine {
        assert_eq!(subs.len(), self.nvars(), "substitution arity mismatch");
        let nvars = subs.first().map_or(0, Affine::nvars);
        let mut out = Affine::constant(nvars, self.constant);
        for (k, sub) in subs.iter().enumerate() {
            if self.coeffs[k] != 0 {
                out = out.add(&sub.scale(self.coeffs[k]));
            }
        }
        out
    }

    /// Renders with the given variable names (used by the printer).
    pub fn display_with<'a>(&'a self, names: &'a [String]) -> AffineDisplay<'a> {
        AffineDisplay { expr: self, names }
    }
}

/// Helper returned by [`Affine::display_with`].
pub struct AffineDisplay<'a> {
    expr: &'a Affine,
    names: &'a [String],
}

impl fmt::Display for AffineDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        for (k, &c) in self.expr.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let name = self.names.get(k).map(String::as_str).unwrap_or("?");
            if wrote {
                write!(f, " {} ", if c < 0 { "-" } else { "+" })?;
            } else if c < 0 {
                write!(f, "-")?;
            }
            if c.abs() != 1 {
                write!(f, "{}*", c.abs())?;
            }
            write!(f, "{name}")?;
            wrote = true;
        }
        let c = self.expr.constant;
        if c != 0 || !wrote {
            if wrote {
                write!(f, " {} {}", if c < 0 { "-" } else { "+" }, c.abs())?;
            } else {
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Affine({:?} + {})", self.coeffs, self.constant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: &[&str]) -> Vec<String> {
        n.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn eval_basic() {
        let f = Affine::new(vec![2, -3], 4);
        assert_eq!(f.eval(&[1, 1]), 3);
        assert_eq!(f.eval(&[0, 0]), 4);
        assert_eq!(f.eval(&[10, 7]), 2 * 10 - 3 * 7 + 4);
    }

    #[test]
    fn constructors() {
        assert!(Affine::constant(3, 7).is_constant());
        let v = Affine::var(3, 1);
        assert_eq!(v.coeffs(), &[0, 1, 0]);
        assert_eq!(v.eval(&[9, 5, 2]), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_out_of_range_panics() {
        let _ = Affine::var(2, 2);
    }

    #[test]
    fn add_and_scale() {
        let a = Affine::new(vec![1, 2], 3);
        let b = Affine::new(vec![-1, 5], 1);
        assert_eq!(a.add(&b), Affine::new(vec![0, 7], 4));
        assert_eq!(a.scale(-2), Affine::new(vec![-2, -4], -6));
    }

    #[test]
    fn substitution_composes_with_matrix_inverse() {
        // f(i, j) = 2i + 5j; substitute i = 2u - 3v, j = -u + 2v
        // (the inverse of T = [[2,3],[1,2]]).
        let f = Affine::new(vec![2, 5], 1);
        let subs = [Affine::new(vec![2, -3], 0), Affine::new(vec![-1, 2], 0)];
        let g = f.substitute(&subs);
        assert_eq!(g, Affine::new(vec![-1, 4], 1));
        // Sanity: evaluating g at (u,v) = T*(i,j) equals f at (i,j).
        let (i, j) = (3, 4);
        let (u, v) = (2 * i + 3 * j, i + 2 * j);
        assert_eq!(g.eval(&[u, v]), f.eval(&[i, j]));
    }

    #[test]
    fn display_formats() {
        let ns = names(&["i", "j"]);
        assert_eq!(
            Affine::new(vec![2, -3], 0).display_with(&ns).to_string(),
            "2*i - 3*j"
        );
        assert_eq!(
            Affine::new(vec![1, 0], -1).display_with(&ns).to_string(),
            "i - 1"
        );
        assert_eq!(
            Affine::new(vec![0, 0], 5).display_with(&ns).to_string(),
            "5"
        );
        assert_eq!(
            Affine::new(vec![0, 0], 0).display_with(&ns).to_string(),
            "0"
        );
        assert_eq!(
            Affine::new(vec![-1, 1], 2).display_with(&ns).to_string(),
            "-i + j + 2"
        );
    }
}
