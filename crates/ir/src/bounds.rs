//! Loop bounds: max-of-affine lower bounds and min-of-affine upper bounds.

use crate::expr::Affine;

/// One bound of a loop.
///
/// A *lower* bound is the maximum of its affine pieces; an *upper* bound is
/// the minimum. Source nests have single-piece constant bounds; unimodular
/// transformations and Fourier–Motzkin-based bound regeneration produce
/// multi-piece bounds (e.g. `max(ceil((u-30)/2), 1)` after skewing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bound {
    pieces: Vec<BoundPiece>,
}

/// One affine piece of a bound, with an optional rational division:
/// the value is `ceil(expr / div)` in a lower bound and `floor(expr / div)`
/// in an upper bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundPiece {
    /// The affine numerator.
    pub expr: Affine,
    /// Positive divisor (1 for ordinary bounds).
    pub div: i64,
}

impl BoundPiece {
    /// A piece with divisor 1.
    pub fn simple(expr: Affine) -> Self {
        BoundPiece { expr, div: 1 }
    }
}

impl Bound {
    /// A single-piece bound.
    pub fn single(expr: Affine) -> Self {
        Bound {
            pieces: vec![BoundPiece::simple(expr)],
        }
    }

    /// A bound with explicit pieces.
    ///
    /// # Panics
    ///
    /// Panics if `pieces` is empty or any divisor is non-positive.
    pub fn from_pieces(pieces: Vec<BoundPiece>) -> Self {
        assert!(!pieces.is_empty(), "bound needs at least one piece");
        assert!(
            pieces.iter().all(|p| p.div > 0),
            "divisors must be positive"
        );
        Bound { pieces }
    }

    /// A constant single-piece bound over `n` variables.
    pub fn constant(n: usize, c: i64) -> Self {
        Bound::single(Affine::constant(n, c))
    }

    /// The pieces of this bound.
    pub fn pieces(&self) -> &[BoundPiece] {
        &self.pieces
    }

    /// `true` when the bound is one constant piece.
    pub fn as_constant(&self) -> Option<i64> {
        match &self.pieces[..] {
            [p] if p.expr.is_constant() && p.div == 1 => Some(p.expr.constant_term()),
            _ => None,
        }
    }

    /// Evaluates as a lower bound: `max` over pieces of `ceil(expr/div)`.
    pub fn eval_lower(&self, iter: &[i64]) -> i64 {
        self.pieces
            .iter()
            .map(|p| loopmem_linalg::gcd::div_ceil(p.expr.eval(iter), p.div))
            .max()
            .expect("bounds are non-empty")
    }

    /// Conservative range of the bound's value over a per-variable box:
    /// every `eval_lower`/`eval_upper` result at a point of the box lies in
    /// the returned `(min, max)`. Used by the dense simulator engine to
    /// size its touch tables; looseness only costs memory, never
    /// correctness. Saturates (rather than panics) when an endpoint leaves
    /// `i64`: callers only use the result to size conservative boxes, and a
    /// clamped endpoint can only arise when actual bound evaluation would
    /// overflow-panic first.
    pub fn value_range(&self, ranges: &[(i64, i64)]) -> (i64, i64) {
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for p in &self.pieces {
            let (elo, ehi) = p.expr.eval_interval_saturating(ranges);
            lo = lo.min(loopmem_linalg::gcd::div_floor(elo, p.div));
            hi = hi.max(loopmem_linalg::gcd::div_ceil(ehi, p.div));
        }
        (lo, hi)
    }

    /// Evaluates as an upper bound: `min` over pieces of `floor(expr/div)`.
    pub fn eval_upper(&self, iter: &[i64]) -> i64 {
        self.pieces
            .iter()
            .map(|p| loopmem_linalg::gcd::div_floor(p.expr.eval(iter), p.div))
            .min()
            .expect("bounds are non-empty")
    }
}

/// One loop of a perfect nest: a variable name and its two bounds.
///
/// The iteration range at a given outer iteration is
/// `eval_lower(..) ..= eval_upper(..)`; an empty range simply executes zero
/// iterations (possible after transformation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Loop {
    /// Loop-variable name (for printing and parsing only).
    pub var: String,
    /// Lower bound (max-of-pieces).
    pub lower: Bound,
    /// Upper bound (min-of-pieces).
    pub upper: Bound,
}

impl Loop {
    /// A loop `for var = lo to hi` with constant bounds over an `n`-deep
    /// nest.
    pub fn rectangular(var: impl Into<String>, n: usize, lo: i64, hi: i64) -> Self {
        Loop {
            var: var.into(),
            lower: Bound::constant(n, lo),
            upper: Bound::constant(n, hi),
        }
    }

    /// `Some((lo, hi))` when both bounds are constants.
    pub fn constant_range(&self) -> Option<(i64, i64)> {
        Some((self.lower.as_constant()?, self.upper.as_constant()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_bounds() {
        let l = Loop::rectangular("i", 2, 1, 10);
        assert_eq!(l.constant_range(), Some((1, 10)));
        assert_eq!(l.lower.eval_lower(&[0, 0]), 1);
        assert_eq!(l.upper.eval_upper(&[0, 0]), 10);
    }

    #[test]
    fn max_of_pieces_lower() {
        // max(1, i - 3) over a 2-deep nest.
        let b = Bound::from_pieces(vec![
            BoundPiece::simple(Affine::constant(2, 1)),
            BoundPiece::simple(Affine::new(vec![1, 0], -3)),
        ]);
        assert_eq!(b.eval_lower(&[2, 0]), 1);
        assert_eq!(b.eval_lower(&[9, 0]), 6);
        assert_eq!(b.as_constant(), None);
    }

    #[test]
    fn divisor_rounding() {
        // Lower bound ceil((u - 30) / 2), upper bound floor(u / 2).
        let lo = Bound::from_pieces(vec![BoundPiece {
            expr: Affine::new(vec![1, 0], -30),
            div: 2,
        }]);
        let hi = Bound::from_pieces(vec![BoundPiece {
            expr: Affine::new(vec![1, 0], 0),
            div: 2,
        }]);
        assert_eq!(lo.eval_lower(&[33, 0]), 2); // ceil(3/2)
        assert_eq!(hi.eval_upper(&[33, 0]), 16); // floor(33/2)
        assert_eq!(lo.eval_lower(&[27, 0]), -1); // ceil(-3/2) = -1
    }

    #[test]
    #[should_panic(expected = "at least one piece")]
    fn empty_bound_panics() {
        let _ = Bound::from_pieces(vec![]);
    }
}
