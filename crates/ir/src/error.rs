//! Typed analysis errors and analytical result bounds.
//!
//! Every `try_*` entry point in the workspace (`loopmem_sim::try_simulate*`,
//! `loopmem_core::try_minimize_mws*`, ...) reports failure through
//! [`AnalysisError`] instead of panicking. The variants mirror the failure
//! modes of a governed analysis service:
//!
//! * [`AnalysisError::Exhausted`] — a resource budget tripped
//!   ([`TripReason`] says which one). The engine degrades gracefully: the
//!   `partial` payload carries analytical [`Bounds`] on the quantity that
//!   was being computed (§3 closed forms / union-box distinct-element
//!   bounds), tagged so callers know the answer is a bound, not exact.
//! * [`AnalysisError::Overflow`] — an intermediate value (subscript,
//!   iteration count, table size) left the representable range. Exact
//!   simulation of such a nest is meaningless; no bound is claimed.
//! * [`AnalysisError::Invalid`] — the input violates a precondition that
//!   legacy entry points `assert!` on.
//! * [`AnalysisError::NestPanicked`] — a nest's worker panicked and the
//!   panic was contained by `catch_unwind`; in multi-nest engines the rest
//!   of the program still completes.

use std::fmt;

/// How a [`Bounds`] value was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundsMethod {
    /// Exact value (lower == upper) from a completed simulation.
    Exact,
    /// Union-box bound: per-array subscript interval boxes intersected with
    /// the iteration-count × reference-count cap (always applicable).
    UnionBox,
    /// §3 closed-form distinct-access estimate (full-rank / separable /
    /// rank-deficient formulas) where the hypotheses held cheaply.
    ClosedForm,
    /// Program-level composition: exact simulation of the successful subset
    /// of nests plus analytical bounds for the degraded ones.
    PartialProgram,
    /// Salvaged prefix: the lower bound is the exact maximum window size of
    /// a deterministic prefix of the lexicographic iteration stream, re-swept
    /// after a budget trip; the upper bound stays analytical. Within a stream
    /// prefix every recorded first touch is the element's true first touch
    /// and every recorded last touch is no later than its true last touch, so
    /// the prefix live count never exceeds the true live count — the prefix
    /// MWS is a valid (and usually much tighter) lower bound on the full MWS.
    SalvagedPrefix,
}

impl fmt::Display for BoundsMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundsMethod::Exact => write!(f, "exact"),
            BoundsMethod::UnionBox => write!(f, "union-box"),
            BoundsMethod::ClosedForm => write!(f, "closed-form"),
            BoundsMethod::PartialProgram => write!(f, "partial-program"),
            BoundsMethod::SalvagedPrefix => write!(f, "salvaged-prefix"),
        }
    }
}

/// Inclusive analytical bounds `lower <= answer <= upper` on a count (MWS,
/// distinct accesses, ...), tagged with the method that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bounds {
    /// Valid lower bound on the true value.
    pub lower: u64,
    /// Valid upper bound on the true value.
    pub upper: u64,
    /// How the interval was derived.
    pub method: BoundsMethod,
}

impl Bounds {
    /// A degenerate interval around a known-exact value.
    pub fn exact(value: u64) -> Self {
        Bounds {
            lower: value,
            upper: value,
            method: BoundsMethod::Exact,
        }
    }

    /// True when the interval pins a single value.
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }

    /// True when `value` lies inside the interval.
    pub fn contains(&self, value: u64) -> bool {
        self.lower <= value && value <= self.upper
    }

    /// Interval `[value, value + slack]`: a size commitment at the upper
    /// bound with `slack` words of possible over-provisioning.
    pub fn with_slack(value: u64, slack: u64, method: BoundsMethod) -> Self {
        Bounds {
            lower: value.saturating_sub(slack),
            upper: value,
            method,
        }
    }

    /// Width of the interval: how far the committed upper bound may sit
    /// above the true value (0 when exact).
    pub fn slack(&self) -> u64 {
        self.upper - self.lower
    }
}

impl fmt::Display for Bounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_exact() {
            write!(f, "{} ({})", self.lower, self.method)
        } else {
            write!(f, "[{}, {}] ({})", self.lower, self.upper, self.method)
        }
    }
}

/// Which resource budget tripped first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TripReason {
    /// The caller's cancel token was flagged.
    Cancelled,
    /// More iterations were swept than `max_iterations` allows.
    MaxIterations,
    /// The wall-clock deadline passed.
    Deadline,
    /// Touch tables would exceed `max_table_bytes`.
    MaxTableBytes,
    /// The transformation search visited more than `max_search_nodes`
    /// candidates / branch-and-bound nodes.
    MaxSearchNodes,
}

impl fmt::Display for TripReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TripReason::Cancelled => write!(f, "cancelled"),
            TripReason::MaxIterations => write!(f, "max-iterations"),
            TripReason::Deadline => write!(f, "deadline"),
            TripReason::MaxTableBytes => write!(f, "max-table-bytes"),
            TripReason::MaxSearchNodes => write!(f, "max-search-nodes"),
        }
    }
}

/// Typed failure of a governed (`try_*`) analysis entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// A resource budget tripped; `partial` bounds the answer analytically.
    Exhausted {
        /// Which budget tripped.
        reason: TripReason,
        /// Analytical bounds on the quantity being computed.
        partial: Bounds,
    },
    /// Intermediate arithmetic (subscript evaluation, table sizing, time
    /// stamping) left the representable range.
    Overflow {
        /// Human-readable description of the overflowing computation.
        context: String,
    },
    /// A precondition on the input was violated.
    Invalid {
        /// What was wrong with the input.
        message: String,
    },
    /// A nest's analysis panicked; the panic was contained.
    NestPanicked {
        /// Index of the nest inside the program (0 for single-nest runs).
        nest: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl AnalysisError {
    /// The analytical bounds attached to an [`AnalysisError::Exhausted`].
    pub fn bounds(&self) -> Option<Bounds> {
        match self {
            AnalysisError::Exhausted { partial, .. } => Some(*partial),
            _ => None,
        }
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Exhausted { reason, partial } => {
                write!(f, "budget exhausted ({reason}); answer in {partial}")
            }
            AnalysisError::Overflow { context } => write!(f, "arithmetic overflow: {context}"),
            AnalysisError::Invalid { message } => write!(f, "invalid input: {message}"),
            AnalysisError::NestPanicked { nest, message } => {
                write!(f, "nest {nest} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_display_and_contains() {
        let b = Bounds {
            lower: 3,
            upper: 10,
            method: BoundsMethod::UnionBox,
        };
        assert!(b.contains(3) && b.contains(10) && !b.contains(11));
        assert!(!b.is_exact());
        assert_eq!(format!("{b}"), "[3, 10] (union-box)");
        let e = Bounds::exact(7);
        assert!(e.is_exact() && e.contains(7));
        assert_eq!(format!("{e}"), "7 (exact)");
    }

    #[test]
    fn error_display() {
        let err = AnalysisError::Exhausted {
            reason: TripReason::Deadline,
            partial: Bounds {
                lower: 0,
                upper: 100,
                method: BoundsMethod::UnionBox,
            },
        };
        assert_eq!(
            format!("{err}"),
            "budget exhausted (deadline); answer in [0, 100] (union-box)"
        );
        assert_eq!(err.bounds().unwrap().upper, 100);
        let err = AnalysisError::NestPanicked {
            nest: 2,
            message: "affine eval overflow".into(),
        };
        assert_eq!(format!("{err}"), "nest 2 panicked: affine eval overflow");
        assert!(err.bounds().is_none());
    }
}
