//! Hand-rolled JSON helpers: string escaping for emitters and a minimal
//! value parser shared by every NDJSON surface in the workspace.
//!
//! The workspace builds offline with no external crates, so the analyzer's
//! diagnostics, the bench-report validator, and the certificate checker all
//! write their NDJSON by hand and this module provides the inverse — just
//! enough of RFC 8259 to parse what we emit (and any similarly plain JSON):
//! objects, arrays, strings with escapes, integers, finite decimal floats
//! (the perfsuite's speedup fields), booleans, null. `NaN`/`Infinity` are
//! not JSON and fail the parse — exactly what the validators want.
//!
//! The module lives in `loopmem-ir` (the workspace's root crate after
//! `loopmem-linalg`) so that crates below `loopmem-analyze` in the
//! dependency order — notably `loopmem-verify`, whose checker must not
//! depend on the optimizer — can parse certificates with the same code the
//! tests use to round-trip them.

use std::collections::BTreeMap;

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number.
    Num(i64),
    /// Decimal number (has a `.`, an exponent, or does not fit `i64`).
    /// Always finite: `NaN`/`Infinity` are not valid JSON.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (keys sorted; duplicate keys keep the last value).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, when this is a number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as `f64` (integer or decimal). Always finite.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }
}

/// Parses one JSON value from `s` (the whole string must be consumed,
/// modulo surrounding whitespace). Returns `None` on any syntax error.
pub fn parse_json(s: &str) -> Option<Json> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    (pos == b.len()).then_some(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(b: &[u8], pos: &mut usize, c: u8) -> Option<()> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(b, pos);
    match b.get(*pos)? {
        b'{' => parse_object(b, pos),
        b'[' => parse_array(b, pos),
        b'"' => parse_string(b, pos).map(Json::Str),
        b't' => parse_lit(b, pos, "true").map(|()| Json::Bool(true)),
        b'f' => parse_lit(b, pos, "false").map(|()| Json::Bool(false)),
        b'n' => parse_lit(b, pos, "null").map(|()| Json::Null),
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        _ => None,
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Option<()> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(())
    } else {
        None
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while matches!(b.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == int_start {
        return None; // a bare `-`, or `NaN`/`Infinity` (not JSON)
    }
    let mut is_float = false;
    if b.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        let frac_start = *pos;
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == frac_start {
            return None; // RFC 8259: at least one digit after the point
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == exp_start {
            return None;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).ok()?;
    if !is_float {
        if let Ok(n) = text.parse::<i64>() {
            return Some(Json::Num(n));
        }
        // Out-of-range integer literal: keep it as a float rather than
        // failing the whole document.
    }
    text.parse::<f64>()
        .ok()
        .filter(|x| x.is_finite())
        .map(Json::Float)
}

fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
    eat(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = std::str::from_utf8(b.get(*pos + 1..*pos + 5)?).ok()?;
                        let cp = u32::from_str_radix(hex, 16).ok()?;
                        out.push(char::from_u32(cp)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            &c => {
                // Copy the whole UTF-8 sequence starting at `c`.
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    0xf0..=0xf7 => 4,
                    _ => return None,
                };
                let s = std::str::from_utf8(b.get(*pos..*pos + len)?).ok()?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Option<Json> {
    eat(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Json::Arr(out));
            }
            _ => return None,
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Option<Json> {
    eat(b, pos, b'{')?;
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        eat(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        out.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Json::Obj(out));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let wrapped = format!("\"{}\"", escape_json(nasty));
        let parsed = parse_json(&wrapped).unwrap();
        assert_eq!(parsed.as_str(), Some(nasty));
    }

    #[test]
    fn parses_diagnostic_shape() {
        let j = parse_json(
            "{\"code\":\"LM0001\",\"nest\":null,\"line\":3,\
             \"span\":{\"start\":10,\"end\":14},\"notes\":[\"a\",\"b\"]}",
        )
        .unwrap();
        assert_eq!(j.get("code").and_then(Json::as_str), Some("LM0001"));
        assert_eq!(j.get("nest"), Some(&Json::Null));
        assert_eq!(j.get("line").and_then(Json::as_i64), Some(3));
        assert_eq!(
            j.get("span")
                .and_then(|s| s.get("end"))
                .and_then(Json::as_i64),
            Some(14)
        );
        match j.get("notes") {
            Some(Json::Arr(a)) => assert_eq!(a.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage_and_nonsense_numbers() {
        assert_eq!(parse_json("{} x"), None);
        assert_eq!(parse_json(""), None);
        assert_eq!(parse_json("[1,2"), None);
        assert_eq!(parse_json("1."), None, "digit required after the point");
        assert_eq!(parse_json("1e"), None, "digit required in the exponent");
        assert_eq!(parse_json("NaN"), None, "NaN is not JSON");
        assert_eq!(parse_json("-Infinity"), None, "Infinity is not JSON");
        assert_eq!(parse_json("1e999"), None, "overflow to inf is rejected");
    }

    #[test]
    fn parses_decimal_floats_for_bench_reports() {
        let j = parse_json("{\"speedup\":23.785,\"millis\":1.0,\"exp\":2.5e2}").unwrap();
        assert_eq!(j.get("speedup").and_then(Json::as_f64), Some(23.785));
        assert_eq!(j.get("millis").and_then(Json::as_f64), Some(1.0));
        assert_eq!(j.get("exp").and_then(Json::as_f64), Some(250.0));
        // Integers still come back as integers, and read as f64 too.
        let n = parse_json("42").unwrap();
        assert_eq!(n.as_i64(), Some(42));
        assert_eq!(n.as_f64(), Some(42.0));
    }
}
