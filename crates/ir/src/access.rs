//! Array declarations and affine array references.

use crate::expr::Affine;
use loopmem_linalg::IMat;
use std::fmt;

/// Index of an array in its nest's declaration table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub usize);

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "array#{}", self.0)
    }
}

/// A declared array: a name and its declared extents.
///
/// The product of the extents is the *default* memory requirement the paper
/// compares against (Figure 2's first column).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Array name.
    pub name: String,
    /// Declared extent of each dimension.
    pub dims: Vec<i64>,
}

impl ArrayDecl {
    /// Creates a declaration.
    ///
    /// # Panics
    ///
    /// Panics if any extent is non-positive or `dims` is empty.
    pub fn new(name: impl Into<String>, dims: Vec<i64>) -> Self {
        assert!(!dims.is_empty(), "array needs at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "extents must be positive");
        ArrayDecl {
            name: name.into(),
            dims,
        }
    }

    /// Total number of declared elements.
    pub fn size(&self) -> i64 {
        self.dims.iter().product()
    }

    /// Dimensionality `d`.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }
}

/// Row-major flattening of element coordinates inside a bounding box.
///
/// Built from conservative per-dimension index ranges (see
/// [`ArrayRef::index_ranges`]), this maps each in-box coordinate vector to
/// a dense cell offset so simulators can replace hash maps with flat
/// tables. Out-of-box coordinates flatten to `None`.
///
/// ```
/// use loopmem_ir::ElementBox;
/// let b = ElementBox::new(&[(1, 4), (0, 9)]); // 4 x 10 box
/// assert_eq!(b.cells(), 40);
/// assert_eq!(b.flatten(&[1, 0]), Some(0));
/// assert_eq!(b.flatten(&[2, 3]), Some(13));
/// assert_eq!(b.flatten(&[0, 0]), None); // below the box
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElementBox {
    lo: Vec<i64>,
    extents: Vec<i64>,
    strides: Vec<i64>,
    cells: u128,
}

impl ElementBox {
    /// Builds a box from inclusive per-dimension ranges. Empty (inverted)
    /// ranges produce a zero-cell box that flattens nothing. Extents wider
    /// than `i64` (ranges spanning most of the type's domain) saturate to
    /// `i64::MAX`; such boxes are far beyond any simulator's table budget
    /// and only their (saturated) `cells` count is ever consulted.
    pub fn new(ranges: &[(i64, i64)]) -> Self {
        let lo: Vec<i64> = ranges.iter().map(|&(l, _)| l).collect();
        let extents: Vec<i64> = ranges
            .iter()
            .map(|&(l, h)| (h as i128 - l as i128 + 1).clamp(0, i64::MAX as i128) as i64)
            .collect();
        let mut strides = vec![0i64; ranges.len()];
        let mut cells: u128 = 1;
        for d in (0..ranges.len()).rev() {
            strides[d] = if cells > u64::MAX as u128 {
                0
            } else {
                cells as i64
            };
            cells = cells.saturating_mul(extents[d] as u128);
        }
        ElementBox {
            lo,
            extents,
            strides,
            cells,
        }
    }

    /// Number of cells in the box (0 when any dimension is empty).
    pub fn cells(&self) -> u128 {
        self.cells
    }

    /// Per-dimension lower corner of the box.
    pub fn lo(&self) -> &[i64] {
        &self.lo
    }

    /// Per-dimension extents (cell counts; 0 for an empty dimension).
    pub fn extents(&self) -> &[i64] {
        &self.extents
    }

    /// Row-major strides (innermost dimension has stride 1). Zero when the
    /// box is too large to address linearly.
    pub fn strides(&self) -> &[i64] {
        &self.strides
    }

    /// Dense row-major offset of `idx`, or `None` when outside the box.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len()` differs from the box rank.
    pub fn flatten(&self, idx: &[i64]) -> Option<usize> {
        assert_eq!(idx.len(), self.lo.len(), "coordinate rank mismatch");
        let mut off: usize = 0;
        for (d, &x) in idx.iter().enumerate() {
            let rel = x - self.lo[d];
            if rel < 0 || rel >= self.extents[d] {
                return None;
            }
            off += rel as usize * self.strides[d] as usize;
        }
        Some(off)
    }
}

/// Whether a reference reads or writes its element.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The reference reads the element.
    Read,
    /// The reference writes the element.
    Write,
}

/// An affine array reference `U[A·I + b]`.
///
/// `matrix` is the `d × n` access (data reference) matrix `A` and `offset`
/// the offset vector `b` of §2; `subscripts()` recovers the per-dimension
/// [`Affine`] view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayRef {
    /// The referenced array.
    pub array: ArrayId,
    /// Access matrix (`d` rows, `n` columns).
    pub matrix: IMat,
    /// Offset vector (`d` entries).
    pub offset: Vec<i64>,
    /// Read or write.
    pub kind: AccessKind,
}

impl ArrayRef {
    /// Creates a reference; validates that `offset` matches the matrix rows.
    ///
    /// # Panics
    ///
    /// Panics if `offset.len() != matrix.nrows()`.
    pub fn new(array: ArrayId, matrix: IMat, offset: Vec<i64>, kind: AccessKind) -> Self {
        assert_eq!(
            offset.len(),
            matrix.nrows(),
            "offset length must equal array rank"
        );
        ArrayRef {
            array,
            matrix,
            offset,
            kind,
        }
    }

    /// Builds a reference from per-dimension affine subscripts.
    ///
    /// # Panics
    ///
    /// Panics if `subs` is empty or the subscripts disagree on depth.
    pub fn from_subscripts(array: ArrayId, subs: &[Affine], kind: AccessKind) -> Self {
        assert!(!subs.is_empty(), "reference needs at least one subscript");
        let matrix = IMat::from_rows(&subs.iter().map(|s| s.coeffs().to_vec()).collect::<Vec<_>>());
        let offset = subs.iter().map(Affine::constant_term).collect();
        ArrayRef::new(array, matrix, offset, kind)
    }

    /// The array rank `d` this reference indexes.
    pub fn rank(&self) -> usize {
        self.matrix.nrows()
    }

    /// The nest depth `n` the subscripts range over.
    pub fn depth(&self) -> usize {
        self.matrix.ncols()
    }

    /// Evaluates the subscript vector at iteration `iter`.
    pub fn index_at(&self, iter: &[i64]) -> Vec<i64> {
        let mut v = self.matrix.mul_vec(iter);
        for (x, &b) in v.iter_mut().zip(&self.offset) {
            *x += b;
        }
        v
    }

    /// Conservative per-dimension subscript ranges over a per-variable
    /// box: evaluating the reference anywhere inside `var_ranges` yields an
    /// index inside the returned box. Exact over non-empty boxes (affine
    /// extrema sit at corners) whose subscripts stay inside `i64`;
    /// overflowing endpoints saturate to `i64::MIN`/`i64::MAX`. The dense
    /// simulator engine uses this to size flat touch tables — a saturated
    /// (oversized) box is demoted to the sparse path by the planner's own
    /// per-reference `i64` re-verification, never under-sized.
    pub fn index_ranges(&self, var_ranges: &[(i64, i64)]) -> Vec<(i64, i64)> {
        self.subscripts()
            .iter()
            .map(|s| s.eval_interval_saturating(var_ranges))
            .collect()
    }

    /// Per-dimension affine subscripts.
    pub fn subscripts(&self) -> Vec<Affine> {
        (0..self.rank())
            .map(|r| Affine::new(self.matrix.row(r).to_vec(), self.offset[r]))
            .collect()
    }

    /// `true` if two references are *uniformly generated*: same array and
    /// same access matrix (offsets may differ) — §2.3.
    pub fn uniformly_generated_with(&self, other: &ArrayRef) -> bool {
        self.array == other.array && self.matrix == other.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decl_size() {
        let d = ArrayDecl::new("A", vec![16, 16]);
        assert_eq!(d.size(), 256);
        assert_eq!(d.rank(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_panics() {
        let _ = ArrayDecl::new("A", vec![0]);
    }

    #[test]
    fn reference_evaluation() {
        // A[i-1][j+2] over a 2-deep nest (Example 2's second reference).
        let r = ArrayRef::new(ArrayId(0), IMat::identity(2), vec![-1, 2], AccessKind::Read);
        assert_eq!(r.index_at(&[5, 7]), vec![4, 9]);
        assert_eq!(r.rank(), 2);
        assert_eq!(r.depth(), 2);
    }

    #[test]
    fn subscripts_roundtrip() {
        let subs = [
            Affine::new(vec![3, 0, 1], 0),
            Affine::new(vec![0, 1, 1], -2),
        ];
        let r = ArrayRef::from_subscripts(ArrayId(1), &subs, AccessKind::Write);
        assert_eq!(r.subscripts(), subs.to_vec());
        assert_eq!(r.offset, vec![0, -2]);
    }

    #[test]
    fn uniform_generation() {
        let a = ArrayRef::new(ArrayId(0), IMat::identity(2), vec![0, 0], AccessKind::Write);
        let b = ArrayRef::new(ArrayId(0), IMat::identity(2), vec![-1, 2], AccessKind::Read);
        let c = ArrayRef::new(
            ArrayId(0),
            IMat::from_rows(&[vec![1, 0], vec![0, 2]]),
            vec![0, 0],
            AccessKind::Read,
        );
        assert!(a.uniformly_generated_with(&b));
        assert!(!a.uniformly_generated_with(&c));
    }
}
