//! Byte-offset source spans and line/column resolution.
//!
//! Every token the `.loop` parser produces carries a [`Span`] — a half-open
//! byte range into the source text — and the parser aggregates token spans
//! into per-loop / per-statement / per-reference spans ([`NestSpans`]). The
//! static analyzer (`loopmem-analyze`) anchors every diagnostic to one of
//! these spans and renders rustc-style caret underlines with
//! [`caret_snippet`]; [`LineIndex`] resolves offsets to 1-based line:column
//! pairs for both the caret gutter and the machine-readable JSON output.

/// A half-open byte range `start..end` into a source string.
///
/// Spans are plain data: they stay valid only for the exact source text
/// they were produced from. An empty span (`start == end`) marks a point
/// (e.g. an unexpected end of input).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span; callers must keep `start <= end`.
    pub fn new(start: usize, end: usize) -> Self {
        debug_assert!(start <= end, "inverted span {start}..{end}");
        Span { start, end }
    }

    /// A zero-width span at `offset`.
    pub fn point(offset: usize) -> Self {
        Span {
            start: offset,
            end: offset,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn join(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` for zero-width (point) spans.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Source locations of one parsed nest's constituents, aligned by index
/// with the corresponding [`LoopNest`](crate::LoopNest) accessors.
///
/// Produced by [`parse_spanned`](crate::parse_spanned) /
/// [`parse_program_spanned`](crate::parse_program_spanned). Array spans are
/// indexed by [`ArrayId`](crate::ArrayId); reference spans by
/// `(statement index, reference index)` in the same order as
/// [`Statement::refs`](crate::Statement::refs) (write destination first,
/// then right-hand-side reads in source order).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NestSpans {
    /// Span of the whole nest (outermost `for` through its closing brace).
    pub nest: Span,
    /// Per-declaration spans (`array NAME [e]...`), indexed by `ArrayId`.
    pub arrays: Vec<Span>,
    /// Per-loop header spans (`for v = lo to hi`), outermost first.
    pub loops: Vec<Span>,
    /// Per-statement spans (access through `;`).
    pub statements: Vec<Span>,
    /// Per-reference spans, `[statement][reference]`.
    pub refs: Vec<Vec<Span>>,
}

/// Precomputed line-start table for resolving byte offsets to 1-based
/// `(line, column)` pairs in O(log lines).
///
/// ```
/// use loopmem_ir::span::LineIndex;
/// let idx = LineIndex::new("ab\ncd\n");
/// assert_eq!(idx.line_col(0), (1, 1));
/// assert_eq!(idx.line_col(4), (2, 2));
/// ```
#[derive(Clone, Debug)]
pub struct LineIndex {
    line_starts: Vec<usize>,
    len: usize,
}

impl LineIndex {
    /// Indexes `src`'s line starts.
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        LineIndex {
            line_starts,
            len: src.len(),
        }
    }

    /// 1-based `(line, column)` of a byte offset (columns count bytes;
    /// the DSL is ASCII). Offsets past the end clamp to the last position.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let offset = offset.min(self.len);
        let line = match self.line_starts.binary_search(&offset) {
            Ok(k) => k,
            Err(k) => k - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// Byte range of 1-based `line`'s text, excluding the newline.
    pub fn line_range(&self, line: usize) -> (usize, usize) {
        let k = line.saturating_sub(1).min(self.line_starts.len() - 1);
        let start = self.line_starts[k];
        let end = self
            .line_starts
            .get(k + 1)
            .map(|&next| next.saturating_sub(1)) // drop the '\n'
            .unwrap_or(self.len);
        (start, end.max(start))
    }
}

/// Renders a rustc-style caret snippet for `span` in `src`:
///
/// ```text
///    |
///  5 |     A[3i + 7j - 10] = A[4i - 3j + 60];
///    |     ^^^^^^^^^^^^^^^
/// ```
///
/// Multi-line spans underline only their first line. Returns an empty
/// string when the span falls outside `src`.
pub fn caret_snippet(src: &str, span: Span) -> String {
    if span.start > src.len() {
        return String::new();
    }
    let idx = LineIndex::new(src);
    let (line, col) = idx.line_col(span.start);
    let (lstart, lend) = idx.line_range(line);
    let text = &src[lstart..lend];
    let gutter = line.to_string().len().max(2);
    let underline_len = span.len().min(lend.saturating_sub(span.start)).max(1);
    let mut out = String::new();
    out.push_str(&format!("{:gutter$} |\n", ""));
    out.push_str(&format!("{line:>gutter$} | {text}\n"));
    out.push_str(&format!(
        "{:gutter$} | {}{}\n",
        "",
        " ".repeat(col - 1),
        "^".repeat(underline_len)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_basics() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.join(b), Span::new(2, 9));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Span::point(7).is_empty());
    }

    #[test]
    fn line_index_resolves_offsets() {
        let idx = LineIndex::new("for i\n  A[i];\n}");
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_col(4), (1, 5));
        assert_eq!(idx.line_col(6), (2, 1));
        assert_eq!(idx.line_col(8), (2, 3));
        assert_eq!(idx.line_col(14), (3, 1));
        assert_eq!(idx.line_range(2), (6, 13));
    }

    #[test]
    fn caret_points_at_token() {
        let src = "array A[10]\nfor i = 1 to 10 { A[i]; }";
        // Span of "A[i]" on line 2.
        let start = src.find("A[i]").unwrap();
        let snip = caret_snippet(src, Span::new(start, start + 4));
        assert!(snip.contains(" 2 | for i = 1 to 10 { A[i]; }"), "{snip}");
        let caret_line = snip.lines().last().unwrap();
        let caret_col = caret_line.find('^').unwrap();
        let text_line = snip.lines().nth(1).unwrap();
        assert_eq!(&text_line[caret_col..caret_col + 4], "A[i]");
        assert!(caret_line.contains("^^^^"), "{snip}");
    }

    #[test]
    fn caret_clamps_to_line_end() {
        let src = "for";
        let snip = caret_snippet(src, Span::new(0, 3));
        assert!(snip.contains("^^^"), "{snip}");
        assert_eq!(caret_snippet(src, Span::new(10, 11)), "");
    }
}
