//! A small textual front end for perfect affine loop nests.
//!
//! The grammar mirrors the paper's presentation of kernels:
//!
//! ```text
//! program   := array_decl* for_loop
//! array_decl:= "array" IDENT ("[" INT "]")+
//! for_loop  := "for" IDENT "=" expr "to" expr "{" body "}"
//! body      := for_loop | statement+
//! statement := access ("=" rhs)? ";"
//! access    := IDENT ("[" expr "]")+
//! expr      := affine combination of integers and loop variables,
//!              e.g. "2*i + 5*j + 1" (the shorthand "2i" also parses)
//! ```
//!
//! The right-hand side of a statement may be an arbitrary arithmetic
//! expression; the parser extracts every array access from it (each becomes
//! a [`AccessKind::Read`] reference) and ignores scalar arithmetic such as
//! `0.2 * (...)`, matching how the paper's analysis only consumes the
//! reference set.
//!
//! ```
//! let nest = loopmem_ir::parse(r#"
//!     array X[100]
//!     for i = 1 to 25 {
//!       for j = 1 to 10 {
//!         X[2i + 5j + 1] = X[2i + 5j + 5];
//!       }
//!     }
//! "#).unwrap();
//! assert_eq!(nest.depth(), 2);
//! ```

use crate::access::{AccessKind, ArrayDecl, ArrayId, ArrayRef};
use crate::bounds::{Bound, Loop};
use crate::expr::Affine;
use crate::nest::{LoopNest, NestError, Statement};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parse or validation failure, with the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

impl ParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

/// Parses DSL text into a validated [`LoopNest`].
///
/// # Errors
///
/// Returns a [`ParseError`] on lexical/syntactic problems, imperfect
/// nesting, non-affine subscripts, or any [`NestError`] raised by
/// validation.
pub fn parse(src: &str) -> Result<LoopNest, ParseError> {
    let tokens = lex(src)?;
    Parser::new(tokens).parse_program()
}

/// Parses a *sequence* of nests sharing the leading array declarations
/// (used by [`crate::parse_program`]).
///
/// # Errors
///
/// Returns a [`ParseError`] on any syntactic or validation failure.
pub(crate) fn parse_many(src: &str) -> Result<Vec<LoopNest>, ParseError> {
    let tokens = lex(src)?;
    Parser::new(tokens).parse_nest_sequence()
}

// ---------------------------------------------------------------- lexer --

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float, // kept only so RHS arithmetic like 0.2 lexes; value discarded
    Sym(char),
}

#[derive(Clone, Debug)]
struct SpannedTok {
    tok: Tok,
    line: usize,
}

fn lex(src: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Line comment.
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    out.push(SpannedTok {
                        tok: Tok::Sym('/'),
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                let mut is_float = false;
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add((d as u8 - b'0') as i64))
                            .ok_or_else(|| ParseError::new(line, "integer literal overflow"))?;
                        chars.next();
                    } else if d == '.' {
                        is_float = true;
                        chars.next();
                        while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                            chars.next();
                        }
                        break;
                    } else {
                        break;
                    }
                }
                out.push(SpannedTok {
                    tok: if is_float { Tok::Float } else { Tok::Int(n) },
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(s),
                    line,
                });
            }
            '=' | '[' | ']' | '{' | '}' | '(' | ')' | ';' | '+' | '-' | '*' | ',' => {
                chars.next();
                out.push(SpannedTok {
                    tok: Tok::Sym(c),
                    line,
                });
            }
            other => {
                return Err(ParseError::new(
                    line,
                    format!("unexpected character '{other}'"),
                ));
            }
        }
    }
    Ok(out)
}

/// Hard cap on loop-nest depth accepted by the parser (stack-safety bound
/// for the recursive-descent `for` parser).
const MAX_NEST_DEPTH: usize = 64;

// ------------------------------------------------------ symbolic affine --

/// Affine expression over named variables, resolved to positional
/// coefficients once the whole nest (and thus the variable order) is known.
#[derive(Clone, Debug, Default)]
struct SymExpr {
    terms: HashMap<String, i64>,
    constant: i64,
}

impl SymExpr {
    fn constant(c: i64) -> Self {
        SymExpr {
            terms: HashMap::new(),
            constant: c,
        }
    }

    fn var(name: &str, coeff: i64) -> Self {
        let mut terms = HashMap::new();
        terms.insert(name.to_string(), coeff);
        SymExpr { terms, constant: 0 }
    }

    /// Folds `sign * other` into `self` with checked arithmetic; `Err(())`
    /// on coefficient overflow (the caller attaches the source line). The
    /// lexer already rejects out-of-range literals, but repeated terms like
    /// `9000000000000000000i + 9000000000000000000i` can still overflow the
    /// merged coefficient.
    fn add(&mut self, other: SymExpr, sign: i64) -> Result<(), ()> {
        for (k, v) in other.terms {
            let slot = self.terms.entry(k).or_insert(0);
            *slot = sign
                .checked_mul(v)
                .and_then(|sv| slot.checked_add(sv))
                .ok_or(())?;
        }
        self.constant = sign
            .checked_mul(other.constant)
            .and_then(|sc| self.constant.checked_add(sc))
            .ok_or(())?;
        Ok(())
    }

    fn resolve(&self, vars: &[String], line: usize) -> Result<Affine, ParseError> {
        let mut coeffs = vec![0i64; vars.len()];
        for (name, &c) in &self.terms {
            match vars.iter().position(|v| v == name) {
                Some(k) => {
                    coeffs[k] = coeffs[k].checked_add(c).ok_or_else(|| {
                        ParseError::new(line, format!("coefficient overflow on '{name}'"))
                    })?
                }
                None => {
                    return Err(ParseError::new(
                        line,
                        format!("unknown variable '{name}' in affine expression"),
                    ))
                }
            }
        }
        Ok(Affine::new(coeffs, self.constant))
    }
}

// --------------------------------------------------------------- parser --

struct PendingRef {
    array: String,
    subs: Vec<SymExpr>,
    kind: AccessKind,
    line: usize,
}

struct PendingStatement {
    refs: Vec<PendingRef>,
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn new(toks: Vec<SpannedTok>) -> Self {
        Parser { toks, pos: 0 }
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(1, |t| t.line)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn next_tok(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn expect_sym(&mut self, c: char) -> Result<(), ParseError> {
        let line = self.line();
        match self.next_tok() {
            Some(Tok::Sym(s)) if s == c => Ok(()),
            other => Err(ParseError::new(
                line,
                format!("expected '{c}', found {other:?}"),
            )),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        let line = self.line();
        match self.next_tok() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(ParseError::new(
                line,
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let line = self.line();
        match self.next_tok() {
            Some(Tok::Ident(s)) if s == kw => Ok(()),
            other => Err(ParseError::new(
                line,
                format!("expected '{kw}', found {other:?}"),
            )),
        }
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Sym(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_program(&mut self) -> Result<LoopNest, ParseError> {
        let arrays = self.parse_array_decls()?;
        let nest = self.parse_one_nest(&arrays)?;
        if self.pos != self.toks.len() {
            return Err(ParseError::new(
                self.line(),
                "trailing input after loop nest",
            ));
        }
        Ok(nest)
    }

    fn parse_nest_sequence(&mut self) -> Result<Vec<LoopNest>, ParseError> {
        let arrays = self.parse_array_decls()?;
        let mut nests = vec![self.parse_one_nest(&arrays)?];
        while self.pos != self.toks.len() {
            nests.push(self.parse_one_nest(&arrays)?);
        }
        Ok(nests)
    }

    fn parse_array_decls(&mut self) -> Result<Vec<ArrayDecl>, ParseError> {
        let mut arrays: Vec<ArrayDecl> = Vec::new();
        while self.peek() == Some(&Tok::Ident("array".to_string())) {
            self.pos += 1;
            let name = self.expect_ident()?;
            let mut dims = Vec::new();
            while self.eat_sym('[') {
                let line = self.line();
                match self.next_tok() {
                    Some(Tok::Int(n)) if n > 0 => dims.push(n),
                    other => {
                        return Err(ParseError::new(
                            line,
                            format!("expected positive array extent, found {other:?}"),
                        ))
                    }
                }
                self.expect_sym(']')?;
            }
            if dims.is_empty() {
                return Err(ParseError::new(
                    self.line(),
                    "array declaration needs extents",
                ));
            }
            if arrays.iter().any(|a| a.name == name) {
                return Err(ParseError::new(
                    self.line(),
                    format!("array '{name}' redeclared"),
                ));
            }
            arrays.push(ArrayDecl::new(name, dims));
        }
        Ok(arrays)
    }

    fn parse_one_nest(&mut self, arrays: &[ArrayDecl]) -> Result<LoopNest, ParseError> {
        let line = self.line();
        let (loops_sym, statements_sym) = self.parse_for(0)?;

        // Resolve symbolic expressions against the final variable order.
        let vars: Vec<String> = loops_sym.iter().map(|l| l.0.clone()).collect();
        let mut loops = Vec::new();
        for (var, lo, hi, l) in &loops_sym {
            loops.push(Loop {
                var: var.clone(),
                lower: Bound::single(lo.resolve(&vars, *l)?),
                upper: Bound::single(hi.resolve(&vars, *l)?),
            });
        }
        let mut statements = Vec::new();
        for s in statements_sym {
            let mut refs = Vec::new();
            for p in s.refs {
                let id = arrays
                    .iter()
                    .position(|a| a.name == p.array)
                    .map(ArrayId)
                    .ok_or_else(|| {
                        ParseError::new(p.line, format!("undeclared array '{}'", p.array))
                    })?;
                let subs: Result<Vec<Affine>, ParseError> =
                    p.subs.iter().map(|e| e.resolve(&vars, p.line)).collect();
                refs.push(ArrayRef::from_subscripts(id, &subs?, p.kind));
            }
            statements.push(Statement::new(refs));
        }

        LoopNest::new(loops, arrays.to_vec(), statements)
            .map_err(|e: NestError| ParseError::new(line, e.to_string()))
    }

    /// Parses a `for` and its body; returns the chain of loops (var, lo,
    /// hi, line) plus the innermost statements.
    #[allow(clippy::type_complexity)]
    fn parse_for(
        &mut self,
        depth: usize,
    ) -> Result<
        (
            Vec<(String, SymExpr, SymExpr, usize)>,
            Vec<PendingStatement>,
        ),
        ParseError,
    > {
        let line = self.line();
        // Recursion depth bound: no real kernel nests anywhere near this
        // deep, and an unbounded descent on adversarial input would blow the
        // stack (an abort, not a catchable error).
        if depth >= MAX_NEST_DEPTH {
            return Err(ParseError::new(
                line,
                format!("nest deeper than {MAX_NEST_DEPTH} loops"),
            ));
        }
        self.expect_keyword("for")?;
        let var = self.expect_ident()?;
        self.expect_sym('=')?;
        let lo = self.parse_affine()?;
        self.expect_keyword("to")?;
        let hi = self.parse_affine()?;
        self.expect_sym('{')?;

        let mut loops = vec![(var, lo, hi, line)];
        let mut statements = Vec::new();
        if self.peek() == Some(&Tok::Ident("for".to_string())) {
            let (inner_loops, inner_stmts) = self.parse_for(depth + 1)?;
            loops.extend(inner_loops);
            statements = inner_stmts;
            if !matches!(self.peek(), Some(Tok::Sym('}'))) {
                return Err(ParseError::new(
                    self.line(),
                    "imperfect nest: statement alongside an inner loop",
                ));
            }
        } else {
            while !matches!(self.peek(), Some(Tok::Sym('}')) | None) {
                if self.peek() == Some(&Tok::Ident("for".to_string())) {
                    return Err(ParseError::new(
                        self.line(),
                        "imperfect nest: loop after statements",
                    ));
                }
                statements.push(self.parse_statement()?);
            }
        }
        self.expect_sym('}')?;
        Ok((loops, statements))
    }

    fn parse_statement(&mut self) -> Result<PendingStatement, ParseError> {
        let first = self.parse_access(AccessKind::Read)?;
        let mut refs = Vec::new();
        if self.eat_sym('=') {
            // The first access is the write destination.
            refs.push(PendingRef {
                kind: AccessKind::Write,
                ..first
            });
            // Scan the RHS up to ';', collecting array accesses and
            // skipping scalar arithmetic.
            loop {
                match self.peek() {
                    None => return Err(ParseError::new(self.line(), "missing ';'")),
                    Some(Tok::Sym(';')) => {
                        self.pos += 1;
                        break;
                    }
                    Some(Tok::Ident(_)) => {
                        // Array access iff followed by '['.
                        if matches!(
                            self.toks.get(self.pos + 1).map(|t| &t.tok),
                            Some(Tok::Sym('['))
                        ) {
                            refs.push(self.parse_access(AccessKind::Read)?);
                        } else {
                            self.pos += 1; // scalar variable: ignore
                        }
                    }
                    Some(_) => {
                        self.pos += 1; // operators, literals, parens: ignore
                    }
                }
            }
        } else {
            // Bare access statement, e.g. the paper's `X[2i - 3j];`.
            refs.push(first);
            self.expect_sym(';')?;
        }
        Ok(PendingStatement { refs })
    }

    fn parse_access(&mut self, kind: AccessKind) -> Result<PendingRef, ParseError> {
        let line = self.line();
        let array = self.expect_ident()?;
        let mut subs = Vec::new();
        while self.eat_sym('[') {
            subs.push(self.parse_affine()?);
            self.expect_sym(']')?;
        }
        if subs.is_empty() {
            return Err(ParseError::new(
                line,
                format!("'{array}' used without subscripts"),
            ));
        }
        Ok(PendingRef {
            array,
            subs,
            kind,
            line,
        })
    }

    /// Parses a (strictly) affine expression: `±term (± term)*` where
    /// `term := INT | INT '*'? IDENT | IDENT '*' INT | IDENT`.
    fn parse_affine(&mut self) -> Result<SymExpr, ParseError> {
        let mut out = SymExpr::default();
        let mut sign = 1i64;
        // Optional leading sign.
        if self.eat_sym('-') {
            sign = -1;
        } else {
            let _ = self.eat_sym('+');
        }
        loop {
            let line = self.line();
            let term = self.parse_affine_term()?;
            out.add(term, sign).map_err(|()| {
                ParseError::new(line, "affine expression coefficient overflows i64")
            })?;
            if self.eat_sym('+') {
                sign = 1;
            } else if self.eat_sym('-') {
                sign = -1;
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn parse_affine_term(&mut self) -> Result<SymExpr, ParseError> {
        let line = self.line();
        match self.next_tok() {
            Some(Tok::Int(n)) => {
                // "2*i", "2i", or plain "2".
                let explicit_star = self.eat_sym('*');
                if let Some(Tok::Ident(v)) = self.peek().cloned() {
                    // "to" is the bound keyword, never an implicit factor.
                    if v == "to" && !explicit_star {
                        return Ok(SymExpr::constant(n));
                    }
                    self.pos += 1;
                    Ok(SymExpr::var(&v, n))
                } else if explicit_star {
                    Err(ParseError::new(line, "expected variable after '*'"))
                } else {
                    Ok(SymExpr::constant(n))
                }
            }
            Some(Tok::Ident(v)) => {
                if self.eat_sym('*') {
                    let line2 = self.line();
                    match self.next_tok() {
                        Some(Tok::Int(n)) => Ok(SymExpr::var(&v, n)),
                        other => Err(ParseError::new(
                            line2,
                            format!(
                                "non-affine term: expected integer after '{v} *', found {other:?}"
                            ),
                        )),
                    }
                } else {
                    Ok(SymExpr::var(&v, 1))
                }
            }
            other => Err(ParseError::new(
                line,
                format!("expected affine term, found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example2() {
        let nest = parse(
            "array A[100][100]\n\
             for i = 1 to 100 {\n\
               for j = 1 to 100 {\n\
                 A[i][j] = A[i-1][j+2];\n\
               }\n\
             }",
        )
        .unwrap();
        assert_eq!(nest.depth(), 2);
        let refs: Vec<_> = nest.refs().collect();
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0].kind, AccessKind::Write);
        assert_eq!(refs[0].offset, vec![0, 0]);
        assert_eq!(refs[1].kind, AccessKind::Read);
        assert_eq!(refs[1].offset, vec![-1, 2]);
        assert!(refs[0].uniformly_generated_with(refs[1]));
    }

    #[test]
    fn parses_implicit_multiplication() {
        let nest = parse(
            "array X[200]\n\
             for i = 1 to 20 { for j = 1 to 10 { X[2i + 5j + 1]; } }",
        )
        .unwrap();
        let r = nest.refs().next().unwrap();
        assert_eq!(r.matrix.row(0), &[2, 5]);
        assert_eq!(r.offset, vec![1]);
        assert_eq!(r.kind, AccessKind::Read);
    }

    #[test]
    fn parses_negative_coefficients() {
        let nest = parse(
            "array X[200]\n\
             for i = 1 to 20 { for j = 1 to 30 { X[2*i - 3*j]; } }",
        )
        .unwrap();
        let r = nest.refs().next().unwrap();
        assert_eq!(r.matrix.row(0), &[2, -3]);
    }

    #[test]
    fn rhs_scalars_are_ignored() {
        // SOR-style statement with scalar multiplier and parens.
        let nest = parse(
            "array A[32][32]\n\
             for i = 2 to 31 {\n\
               for j = 2 to 31 {\n\
                 A[i][j] = 0.2 * (A[i][j] + A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]);\n\
               }\n\
             }",
        )
        .unwrap();
        assert_eq!(nest.statements()[0].refs().len(), 6);
    }

    #[test]
    fn triangular_bounds_parse() {
        let nest = parse(
            "array A[10][10]\n\
             for i = 1 to 10 { for j = i to 10 { A[i][j]; } }",
        )
        .unwrap();
        assert!(!nest.is_rectangular());
    }

    #[test]
    fn imperfect_nest_rejected() {
        let err = parse(
            "array A[10][10]\n\
             for i = 1 to 10 {\n\
               A[i][1];\n\
               for j = 1 to 10 { A[i][j]; }\n\
             }",
        )
        .unwrap_err();
        assert!(err.message.contains("imperfect"), "{err}");
    }

    #[test]
    fn undeclared_array_rejected() {
        let err = parse("for i = 1 to 10 { B[i]; }").unwrap_err();
        assert!(err.message.contains("undeclared"), "{err}");
    }

    #[test]
    fn unknown_variable_rejected() {
        let err = parse("array A[10]\nfor i = 1 to 10 { A[k]; }").unwrap_err();
        assert!(err.message.contains("unknown variable"), "{err}");
    }

    #[test]
    fn non_affine_subscript_rejected() {
        let err = parse("array A[10]\nfor i = 1 to 10 { A[i*i]; }").unwrap_err();
        assert!(err.message.contains("non-affine"), "{err}");
    }

    #[test]
    fn comments_are_skipped() {
        let nest = parse(
            "# declared footprint\n\
             array A[10]\n\
             // the loop\n\
             for i = 1 to 10 { A[i]; }",
        )
        .unwrap();
        assert_eq!(nest.depth(), 1);
    }

    #[test]
    fn error_reports_line() {
        let err = parse("array A[10]\nfor i = 1 to 10 {\n  A[);\n}").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn three_deep_example5() {
        let nest = parse(
            "array A[100][100]\n\
             for i = 1 to 10 {\n\
               for j = 1 to 20 {\n\
                 for k = 1 to 30 {\n\
                   A[3i + k][j + k];\n\
                 }\n\
               }\n\
             }",
        )
        .unwrap();
        assert_eq!(nest.depth(), 3);
        let r = nest.refs().next().unwrap();
        assert_eq!(r.matrix.row(0), &[3, 0, 1]);
        assert_eq!(r.matrix.row(1), &[0, 1, 1]);
    }
}
