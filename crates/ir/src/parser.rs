//! A small textual front end for perfect affine loop nests.
//!
//! The grammar mirrors the paper's presentation of kernels:
//!
//! ```text
//! program   := array_decl* for_loop
//! array_decl:= "array" IDENT ("[" INT "]")+
//! for_loop  := "for" IDENT "=" expr "to" expr "{" body "}"
//! body      := for_loop | statement+
//! statement := access ("=" rhs)? ";"
//! access    := IDENT ("[" expr "]")+
//! expr      := affine combination of integers and loop variables,
//!              e.g. "2*i + 5*j + 1" (the shorthand "2i" also parses)
//! ```
//!
//! The right-hand side of a statement may be an arbitrary arithmetic
//! expression; the parser extracts every array access from it (each becomes
//! a [`AccessKind::Read`] reference) and ignores scalar arithmetic such as
//! `0.2 * (...)`, matching how the paper's analysis only consumes the
//! reference set.
//!
//! Every token carries a byte-offset [`Span`]; [`parse_spanned`] returns
//! the nest together with a [`NestSpans`] table locating each loop header,
//! statement, reference, and array declaration in the source text, and
//! every [`ParseError`] carries the `line:col` and span of the offending
//! token (render a caret with [`ParseError::render`]).
//!
//! ```
//! let nest = loopmem_ir::parse(r#"
//!     array X[100]
//!     for i = 1 to 25 {
//!       for j = 1 to 10 {
//!         X[2i + 5j + 1] = X[2i + 5j + 5];
//!       }
//!     }
//! "#).unwrap();
//! assert_eq!(nest.depth(), 2);
//! ```

use crate::access::{AccessKind, ArrayDecl, ArrayId, ArrayRef};
use crate::bounds::{Bound, Loop};
use crate::expr::Affine;
use crate::nest::{LoopNest, NestError, Statement};
use crate::span::{caret_snippet, NestSpans, Span};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parse or validation failure, with the 1-based source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column (byte-based) of the offending token.
    pub col: usize,
    /// Byte span of the offending token (empty at end of input).
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}: {}", self.line, self.col, self.message)
    }
}

impl Error for ParseError {}

impl ParseError {
    fn new(pos: Pos, message: impl Into<String>) -> Self {
        ParseError {
            line: pos.line,
            col: pos.col,
            span: pos.span,
            message: message.into(),
        }
    }

    /// Creates an error at an explicit position (used by program-level
    /// validation wrappers that have no token to point at).
    pub fn at(line: usize, col: usize, span: Span, message: impl Into<String>) -> Self {
        ParseError {
            line,
            col,
            span,
            message: message.into(),
        }
    }

    /// Renders the error with a caret snippet pointing at the offending
    /// token in `src` (the exact text that was parsed):
    ///
    /// ```text
    /// line 3:5: expected ']', found Sym(';')
    ///    |
    ///  3 |   A[i;
    ///    |     ^
    /// ```
    pub fn render(&self, src: &str) -> String {
        let snippet = caret_snippet(src, self.span);
        if snippet.is_empty() {
            format!("{self}\n")
        } else {
            format!("{self}\n{snippet}")
        }
    }
}

/// Source position of a token: 1-based line/column plus its byte span.
#[derive(Clone, Copy, Debug)]
struct Pos {
    line: usize,
    col: usize,
    span: Span,
}

/// Parses DSL text into a validated [`LoopNest`].
///
/// # Errors
///
/// Returns a [`ParseError`] on lexical/syntactic problems, imperfect
/// nesting, non-affine subscripts, or any [`NestError`] raised by
/// validation.
pub fn parse(src: &str) -> Result<LoopNest, ParseError> {
    parse_spanned(src).map(|(nest, _)| nest)
}

/// Like [`parse`], but additionally returns the [`NestSpans`] table
/// locating every loop header, array declaration, statement, and
/// reference in `src` — the anchor data for span-aware diagnostics.
///
/// # Errors
///
/// Same as [`parse`].
pub fn parse_spanned(src: &str) -> Result<(LoopNest, NestSpans), ParseError> {
    let tokens = lex(src)?;
    Parser::new(tokens, src.len()).parse_program()
}

/// Parses a *sequence* of nests sharing the leading array declarations
/// (used by [`crate::parse_program`]), with spans.
///
/// # Errors
///
/// Returns a [`ParseError`] on any syntactic or validation failure.
pub(crate) fn parse_many(src: &str) -> Result<Vec<(LoopNest, NestSpans)>, ParseError> {
    let tokens = lex(src)?;
    Parser::new(tokens, src.len()).parse_nest_sequence()
}

// ---------------------------------------------------------------- lexer --

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float, // kept only so RHS arithmetic like 0.2 lexes; value discarded
    Sym(char),
}

#[derive(Clone, Debug)]
struct SpannedTok {
    tok: Tok,
    pos: Pos,
}

fn lex(src: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut line_start = 0usize;
    let mut chars = src.char_indices().peekable();
    // Position helper: 1-based line/col plus byte span.
    let pos_at = |line: usize, line_start: usize, start: usize, end: usize| Pos {
        line,
        col: start - line_start + 1,
        span: Span::new(start, end),
    };
    while let Some(&(at, c)) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
                line_start = at + 1;
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Line comment.
                for (i, c) in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        line_start = i + 1;
                        break;
                    }
                }
            }
            '/' => {
                chars.next();
                if chars.peek().map(|&(_, c)| c) == Some('/') {
                    for (i, c) in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            line_start = i + 1;
                            break;
                        }
                    }
                } else {
                    out.push(SpannedTok {
                        tok: Tok::Sym('/'),
                        pos: pos_at(line, line_start, at, at + 1),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                let mut is_float = false;
                let mut end = at;
                while let Some(&(i, d)) = chars.peek() {
                    if d.is_ascii_digit() {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add((d as u8 - b'0') as i64))
                            .ok_or_else(|| {
                                ParseError::new(
                                    pos_at(line, line_start, at, i + 1),
                                    "integer literal overflow",
                                )
                            })?;
                        end = i + 1;
                        chars.next();
                    } else if d == '.' {
                        is_float = true;
                        end = i + 1;
                        chars.next();
                        while let Some(&(i, d)) = chars.peek() {
                            if d.is_ascii_digit() {
                                end = i + 1;
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        break;
                    } else {
                        break;
                    }
                }
                out.push(SpannedTok {
                    tok: if is_float { Tok::Float } else { Tok::Int(n) },
                    pos: pos_at(line, line_start, at, end),
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                let mut end = at;
                while let Some(&(i, d)) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        end = i + 1;
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(s),
                    pos: pos_at(line, line_start, at, end),
                });
            }
            '=' | '[' | ']' | '{' | '}' | '(' | ')' | ';' | '+' | '-' | '*' | ',' => {
                chars.next();
                out.push(SpannedTok {
                    tok: Tok::Sym(c),
                    pos: pos_at(line, line_start, at, at + 1),
                });
            }
            other => {
                return Err(ParseError::new(
                    pos_at(line, line_start, at, at + c.len_utf8()),
                    format!("unexpected character '{other}'"),
                ));
            }
        }
    }
    Ok(out)
}

/// Hard cap on loop-nest depth accepted by the parser (stack-safety bound
/// for the recursive-descent `for` parser).
const MAX_NEST_DEPTH: usize = 64;

// ------------------------------------------------------ symbolic affine --

/// Affine expression over named variables, resolved to positional
/// coefficients once the whole nest (and thus the variable order) is known.
#[derive(Clone, Debug, Default)]
struct SymExpr {
    terms: HashMap<String, i64>,
    constant: i64,
}

impl SymExpr {
    fn constant(c: i64) -> Self {
        SymExpr {
            terms: HashMap::new(),
            constant: c,
        }
    }

    fn var(name: &str, coeff: i64) -> Self {
        let mut terms = HashMap::new();
        terms.insert(name.to_string(), coeff);
        SymExpr { terms, constant: 0 }
    }

    /// Folds `sign * other` into `self` with checked arithmetic; `Err(())`
    /// on coefficient overflow (the caller attaches the source position).
    /// The lexer already rejects out-of-range literals, but repeated terms
    /// like `9000000000000000000i + 9000000000000000000i` can still
    /// overflow the merged coefficient.
    fn add(&mut self, other: SymExpr, sign: i64) -> Result<(), ()> {
        for (k, v) in other.terms {
            let slot = self.terms.entry(k).or_insert(0);
            *slot = sign
                .checked_mul(v)
                .and_then(|sv| slot.checked_add(sv))
                .ok_or(())?;
        }
        self.constant = sign
            .checked_mul(other.constant)
            .and_then(|sc| self.constant.checked_add(sc))
            .ok_or(())?;
        Ok(())
    }

    fn resolve(&self, vars: &[String], pos: Pos) -> Result<Affine, ParseError> {
        let mut coeffs = vec![0i64; vars.len()];
        for (name, &c) in &self.terms {
            match vars.iter().position(|v| v == name) {
                Some(k) => {
                    coeffs[k] = coeffs[k].checked_add(c).ok_or_else(|| {
                        ParseError::new(pos, format!("coefficient overflow on '{name}'"))
                    })?
                }
                None => {
                    return Err(ParseError::new(
                        pos,
                        format!("unknown variable '{name}' in affine expression"),
                    ))
                }
            }
        }
        Ok(Affine::new(coeffs, self.constant))
    }
}

// --------------------------------------------------------------- parser --

struct PendingRef {
    array: String,
    subs: Vec<SymExpr>,
    kind: AccessKind,
    pos: Pos,
}

struct PendingStatement {
    refs: Vec<PendingRef>,
    span: Span,
}

/// One loop header collected while descending: `(var, lo, hi, pos, span)`.
type PendingLoop = (String, SymExpr, SymExpr, Pos, Span);

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn new(toks: Vec<SpannedTok>, src_len: usize) -> Self {
        Parser {
            toks,
            pos: 0,
            src_len,
        }
    }

    /// Position of the current token (or a point at end of input).
    fn here(&self) -> Pos {
        match self.toks.get(self.pos) {
            Some(t) => t.pos,
            None => match self.toks.last() {
                // Past the end: point just after the last token.
                Some(t) => Pos {
                    line: t.pos.line,
                    col: t.pos.col + t.pos.span.len(),
                    span: Span::point(t.pos.span.end),
                },
                None => Pos {
                    line: 1,
                    col: 1,
                    span: Span::point(self.src_len),
                },
            },
        }
    }

    /// Span of the most recently consumed token.
    fn prev_span(&self) -> Span {
        self.toks
            .get(self.pos.wrapping_sub(1))
            .map(|t| t.pos.span)
            .unwrap_or_default()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn next_tok(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn expect_sym(&mut self, c: char) -> Result<(), ParseError> {
        let pos = self.here();
        match self.next_tok() {
            Some(Tok::Sym(s)) if s == c => Ok(()),
            other => Err(ParseError::new(
                pos,
                format!("expected '{c}', found {other:?}"),
            )),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        let pos = self.here();
        match self.next_tok() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(ParseError::new(
                pos,
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let pos = self.here();
        match self.next_tok() {
            Some(Tok::Ident(s)) if s == kw => Ok(()),
            other => Err(ParseError::new(
                pos,
                format!("expected '{kw}', found {other:?}"),
            )),
        }
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Sym(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_program(&mut self) -> Result<(LoopNest, NestSpans), ParseError> {
        let (arrays, array_spans) = self.parse_array_decls()?;
        let nest = self.parse_one_nest(&arrays, &array_spans)?;
        if self.pos != self.toks.len() {
            return Err(ParseError::new(
                self.here(),
                "trailing input after loop nest",
            ));
        }
        Ok(nest)
    }

    fn parse_nest_sequence(&mut self) -> Result<Vec<(LoopNest, NestSpans)>, ParseError> {
        let (arrays, array_spans) = self.parse_array_decls()?;
        let mut nests = vec![self.parse_one_nest(&arrays, &array_spans)?];
        while self.pos != self.toks.len() {
            nests.push(self.parse_one_nest(&arrays, &array_spans)?);
        }
        Ok(nests)
    }

    fn parse_array_decls(&mut self) -> Result<(Vec<ArrayDecl>, Vec<Span>), ParseError> {
        let mut arrays: Vec<ArrayDecl> = Vec::new();
        let mut spans: Vec<Span> = Vec::new();
        while self.peek() == Some(&Tok::Ident("array".to_string())) {
            let start = self.here().span;
            self.pos += 1;
            let name = self.expect_ident()?;
            let mut dims = Vec::new();
            while self.eat_sym('[') {
                let pos = self.here();
                match self.next_tok() {
                    Some(Tok::Int(n)) if n > 0 => dims.push(n),
                    other => {
                        return Err(ParseError::new(
                            pos,
                            format!("expected positive array extent, found {other:?}"),
                        ))
                    }
                }
                self.expect_sym(']')?;
            }
            if dims.is_empty() {
                return Err(ParseError::new(
                    self.here(),
                    "array declaration needs extents",
                ));
            }
            if arrays.iter().any(|a| a.name == name) {
                return Err(ParseError::new(
                    self.here(),
                    format!("array '{name}' redeclared"),
                ));
            }
            spans.push(start.join(self.prev_span()));
            arrays.push(ArrayDecl::new(name, dims));
        }
        Ok((arrays, spans))
    }

    fn parse_one_nest(
        &mut self,
        arrays: &[ArrayDecl],
        array_spans: &[Span],
    ) -> Result<(LoopNest, NestSpans), ParseError> {
        let pos = self.here();
        let (loops_sym, statements_sym) = self.parse_for(0)?;
        let nest_span = pos.span.join(self.prev_span());

        // Resolve symbolic expressions against the final variable order.
        let vars: Vec<String> = loops_sym.iter().map(|l| l.0.clone()).collect();
        let mut loops = Vec::new();
        let mut loop_spans = Vec::new();
        for (var, lo, hi, p, header) in &loops_sym {
            loops.push(Loop {
                var: var.clone(),
                lower: Bound::single(lo.resolve(&vars, *p)?),
                upper: Bound::single(hi.resolve(&vars, *p)?),
            });
            loop_spans.push(*header);
        }
        let mut statements = Vec::new();
        let mut stmt_spans = Vec::new();
        let mut ref_spans = Vec::new();
        for s in statements_sym {
            let mut refs = Vec::new();
            let mut spans = Vec::new();
            for p in s.refs {
                let id = arrays
                    .iter()
                    .position(|a| a.name == p.array)
                    .map(ArrayId)
                    .ok_or_else(|| {
                        ParseError::new(p.pos, format!("undeclared array '{}'", p.array))
                    })?;
                let subs: Result<Vec<Affine>, ParseError> =
                    p.subs.iter().map(|e| e.resolve(&vars, p.pos)).collect();
                refs.push(ArrayRef::from_subscripts(id, &subs?, p.kind));
                spans.push(p.pos.span);
            }
            statements.push(Statement::new(refs));
            stmt_spans.push(s.span);
            ref_spans.push(spans);
        }

        let nest = LoopNest::new(loops, arrays.to_vec(), statements)
            .map_err(|e: NestError| ParseError::new(pos, e.to_string()))?;
        Ok((
            nest,
            NestSpans {
                nest: nest_span,
                arrays: array_spans.to_vec(),
                loops: loop_spans,
                statements: stmt_spans,
                refs: ref_spans,
            },
        ))
    }

    /// Parses a `for` and its body; returns the chain of loops (var, lo,
    /// hi, position, header span) plus the innermost statements.
    #[allow(clippy::type_complexity)]
    fn parse_for(
        &mut self,
        depth: usize,
    ) -> Result<(Vec<PendingLoop>, Vec<PendingStatement>), ParseError> {
        let pos = self.here();
        // Recursion depth bound: no real kernel nests anywhere near this
        // deep, and an unbounded descent on adversarial input would blow the
        // stack (an abort, not a catchable error).
        if depth >= MAX_NEST_DEPTH {
            return Err(ParseError::new(
                pos,
                format!("nest deeper than {MAX_NEST_DEPTH} loops"),
            ));
        }
        self.expect_keyword("for")?;
        let var = self.expect_ident()?;
        self.expect_sym('=')?;
        let lo = self.parse_affine()?;
        self.expect_keyword("to")?;
        let hi = self.parse_affine()?;
        let header = pos.span.join(self.prev_span());
        self.expect_sym('{')?;

        let mut loops = vec![(var, lo, hi, pos, header)];
        let mut statements = Vec::new();
        if self.peek() == Some(&Tok::Ident("for".to_string())) {
            let (inner_loops, inner_stmts) = self.parse_for(depth + 1)?;
            loops.extend(inner_loops);
            statements = inner_stmts;
            if !matches!(self.peek(), Some(Tok::Sym('}'))) {
                return Err(ParseError::new(
                    self.here(),
                    "imperfect nest: statement alongside an inner loop",
                ));
            }
        } else {
            while !matches!(self.peek(), Some(Tok::Sym('}')) | None) {
                if self.peek() == Some(&Tok::Ident("for".to_string())) {
                    return Err(ParseError::new(
                        self.here(),
                        "imperfect nest: loop after statements",
                    ));
                }
                statements.push(self.parse_statement()?);
            }
        }
        self.expect_sym('}')?;
        Ok((loops, statements))
    }

    fn parse_statement(&mut self) -> Result<PendingStatement, ParseError> {
        let start = self.here().span;
        let first = self.parse_access(AccessKind::Read)?;
        let mut refs = Vec::new();
        if self.eat_sym('=') {
            // The first access is the write destination.
            refs.push(PendingRef {
                kind: AccessKind::Write,
                ..first
            });
            // Scan the RHS up to ';', collecting array accesses and
            // skipping scalar arithmetic.
            loop {
                match self.peek() {
                    None => return Err(ParseError::new(self.here(), "missing ';'")),
                    Some(Tok::Sym(';')) => {
                        self.pos += 1;
                        break;
                    }
                    Some(Tok::Ident(_)) => {
                        // Array access iff followed by '['.
                        if matches!(
                            self.toks.get(self.pos + 1).map(|t| &t.tok),
                            Some(Tok::Sym('['))
                        ) {
                            refs.push(self.parse_access(AccessKind::Read)?);
                        } else {
                            self.pos += 1; // scalar variable: ignore
                        }
                    }
                    Some(_) => {
                        self.pos += 1; // operators, literals, parens: ignore
                    }
                }
            }
        } else {
            // Bare access statement, e.g. the paper's `X[2i - 3j];`.
            refs.push(first);
            self.expect_sym(';')?;
        }
        Ok(PendingStatement {
            refs,
            span: start.join(self.prev_span()),
        })
    }

    fn parse_access(&mut self, kind: AccessKind) -> Result<PendingRef, ParseError> {
        let pos = self.here();
        let array = self.expect_ident()?;
        let mut subs = Vec::new();
        while self.eat_sym('[') {
            subs.push(self.parse_affine()?);
            self.expect_sym(']')?;
        }
        if subs.is_empty() {
            return Err(ParseError::new(
                pos,
                format!("'{array}' used without subscripts"),
            ));
        }
        Ok(PendingRef {
            array,
            subs,
            kind,
            pos: Pos {
                line: pos.line,
                col: pos.col,
                span: pos.span.join(self.prev_span()),
            },
        })
    }

    /// Parses a (strictly) affine expression: `±term (± term)*` where
    /// `term := INT | INT '*'? IDENT | IDENT '*' INT | IDENT`.
    fn parse_affine(&mut self) -> Result<SymExpr, ParseError> {
        let mut out = SymExpr::default();
        let mut sign = 1i64;
        // Optional leading sign.
        if self.eat_sym('-') {
            sign = -1;
        } else {
            let _ = self.eat_sym('+');
        }
        loop {
            let pos = self.here();
            let term = self.parse_affine_term()?;
            out.add(term, sign).map_err(|()| {
                ParseError::new(pos, "affine expression coefficient overflows i64")
            })?;
            if self.eat_sym('+') {
                sign = 1;
            } else if self.eat_sym('-') {
                sign = -1;
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn parse_affine_term(&mut self) -> Result<SymExpr, ParseError> {
        let pos = self.here();
        match self.next_tok() {
            Some(Tok::Int(n)) => {
                // "2*i", "2i", or plain "2".
                let explicit_star = self.eat_sym('*');
                if let Some(Tok::Ident(v)) = self.peek().cloned() {
                    // "to" is the bound keyword, never an implicit factor.
                    if v == "to" && !explicit_star {
                        return Ok(SymExpr::constant(n));
                    }
                    self.pos += 1;
                    Ok(SymExpr::var(&v, n))
                } else if explicit_star {
                    Err(ParseError::new(pos, "expected variable after '*'"))
                } else {
                    Ok(SymExpr::constant(n))
                }
            }
            Some(Tok::Ident(v)) => {
                if self.eat_sym('*') {
                    let pos2 = self.here();
                    match self.next_tok() {
                        Some(Tok::Int(n)) => Ok(SymExpr::var(&v, n)),
                        other => Err(ParseError::new(
                            pos2,
                            format!(
                                "non-affine term: expected integer after '{v} *', found {other:?}"
                            ),
                        )),
                    }
                } else {
                    Ok(SymExpr::var(&v, 1))
                }
            }
            other => Err(ParseError::new(
                pos,
                format!("expected affine term, found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example2() {
        let nest = parse(
            "array A[100][100]\n\
             for i = 1 to 100 {\n\
               for j = 1 to 100 {\n\
                 A[i][j] = A[i-1][j+2];\n\
               }\n\
             }",
        )
        .unwrap();
        assert_eq!(nest.depth(), 2);
        let refs: Vec<_> = nest.refs().collect();
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0].kind, AccessKind::Write);
        assert_eq!(refs[0].offset, vec![0, 0]);
        assert_eq!(refs[1].kind, AccessKind::Read);
        assert_eq!(refs[1].offset, vec![-1, 2]);
        assert!(refs[0].uniformly_generated_with(refs[1]));
    }

    #[test]
    fn parses_implicit_multiplication() {
        let nest = parse(
            "array X[200]\n\
             for i = 1 to 20 { for j = 1 to 10 { X[2i + 5j + 1]; } }",
        )
        .unwrap();
        let r = nest.refs().next().unwrap();
        assert_eq!(r.matrix.row(0), &[2, 5]);
        assert_eq!(r.offset, vec![1]);
        assert_eq!(r.kind, AccessKind::Read);
    }

    #[test]
    fn parses_negative_coefficients() {
        let nest = parse(
            "array X[200]\n\
             for i = 1 to 20 { for j = 1 to 30 { X[2*i - 3*j]; } }",
        )
        .unwrap();
        let r = nest.refs().next().unwrap();
        assert_eq!(r.matrix.row(0), &[2, -3]);
    }

    #[test]
    fn rhs_scalars_are_ignored() {
        // SOR-style statement with scalar multiplier and parens.
        let nest = parse(
            "array A[32][32]\n\
             for i = 2 to 31 {\n\
               for j = 2 to 31 {\n\
                 A[i][j] = 0.2 * (A[i][j] + A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]);\n\
               }\n\
             }",
        )
        .unwrap();
        assert_eq!(nest.statements()[0].refs().len(), 6);
    }

    #[test]
    fn triangular_bounds_parse() {
        let nest = parse(
            "array A[10][10]\n\
             for i = 1 to 10 { for j = i to 10 { A[i][j]; } }",
        )
        .unwrap();
        assert!(!nest.is_rectangular());
    }

    #[test]
    fn imperfect_nest_rejected() {
        let err = parse(
            "array A[10][10]\n\
             for i = 1 to 10 {\n\
               A[i][1];\n\
               for j = 1 to 10 { A[i][j]; }\n\
             }",
        )
        .unwrap_err();
        assert!(err.message.contains("imperfect"), "{err}");
    }

    #[test]
    fn undeclared_array_rejected() {
        let err = parse("for i = 1 to 10 { B[i]; }").unwrap_err();
        assert!(err.message.contains("undeclared"), "{err}");
    }

    #[test]
    fn unknown_variable_rejected() {
        let err = parse("array A[10]\nfor i = 1 to 10 { A[k]; }").unwrap_err();
        assert!(err.message.contains("unknown variable"), "{err}");
    }

    #[test]
    fn non_affine_subscript_rejected() {
        let err = parse("array A[10]\nfor i = 1 to 10 { A[i*i]; }").unwrap_err();
        assert!(err.message.contains("non-affine"), "{err}");
    }

    #[test]
    fn comments_are_skipped() {
        let nest = parse(
            "# declared footprint\n\
             array A[10]\n\
             // the loop\n\
             for i = 1 to 10 { A[i]; }",
        )
        .unwrap();
        assert_eq!(nest.depth(), 1);
    }

    #[test]
    fn error_reports_line_and_col() {
        let src = "array A[10]\nfor i = 1 to 10 {\n  A[);\n}";
        let err = parse(src).unwrap_err();
        assert_eq!(err.line, 3);
        // The offending token is the ')' at column 5.
        assert_eq!(err.col, 5);
        assert_eq!(&src[err.span.start..err.span.end], ")");
    }

    #[test]
    fn three_deep_example5() {
        let nest = parse(
            "array A[100][100]\n\
             for i = 1 to 10 {\n\
               for j = 1 to 20 {\n\
                 for k = 1 to 30 {\n\
                   A[3i + k][j + k];\n\
                 }\n\
               }\n\
             }",
        )
        .unwrap();
        assert_eq!(nest.depth(), 3);
        let r = nest.refs().next().unwrap();
        assert_eq!(r.matrix.row(0), &[3, 0, 1]);
        assert_eq!(r.matrix.row(1), &[0, 1, 1]);
    }

    #[test]
    fn spans_locate_loops_statements_and_refs() {
        let src = "array A[100][100]\n\
             for i = 1 to 100 {\n\
               for j = 1 to 100 {\n\
                 A[i][j] = A[i-1][j+2];\n\
               }\n\
             }";
        let (nest, spans) = parse_spanned(src).unwrap();
        assert_eq!(spans.loops.len(), nest.depth());
        assert_eq!(spans.arrays.len(), 1);
        assert_eq!(spans.statements.len(), 1);
        assert_eq!(spans.refs[0].len(), 2);
        let text = |s: Span| &src[s.start..s.end];
        assert_eq!(text(spans.arrays[0]), "array A[100][100]");
        assert_eq!(text(spans.loops[0]), "for i = 1 to 100");
        assert_eq!(text(spans.loops[1]), "for j = 1 to 100");
        assert_eq!(text(spans.statements[0]), "A[i][j] = A[i-1][j+2];");
        assert_eq!(text(spans.refs[0][0]), "A[i][j]");
        assert_eq!(text(spans.refs[0][1]), "A[i-1][j+2]");
        assert!(spans.nest.start <= spans.loops[0].start);
        assert_eq!(spans.nest.end, src.len());
    }

    #[test]
    fn eof_error_points_past_last_token() {
        let src = "array A[10]\nfor i = 1 to 10 { A[i];";
        let err = parse(src).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.span.start >= src.len() - 1, "{err:?}");
    }
}
