//! Perfect loop nests: the validated program unit everything analyzes.

use crate::access::{ArrayDecl, ArrayId, ArrayRef};
use crate::bounds::Loop;
use std::error::Error;
use std::fmt;

/// One statement of the innermost loop body: an optional write reference
/// followed by zero or more reads (or a bare read for expression
/// statements such as the paper's `X[2i − 3j]`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Statement {
    refs: Vec<ArrayRef>,
}

impl Statement {
    /// Creates a statement from references (sources first is conventional
    /// but not required).
    ///
    /// # Panics
    ///
    /// Panics if `refs` is empty.
    pub fn new(refs: Vec<ArrayRef>) -> Self {
        assert!(!refs.is_empty(), "statement needs at least one reference");
        Statement { refs }
    }

    /// All references of the statement.
    pub fn refs(&self) -> &[ArrayRef] {
        &self.refs
    }
}

/// Validation failures raised by [`LoopNest::new`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NestError {
    /// The nest has no loops.
    Empty,
    /// A bound of loop `loop_index` references that loop or an inner one.
    BoundUsesInnerVariable {
        /// Which loop the offending bound belongs to.
        loop_index: usize,
    },
    /// A reference names an array id that is not declared.
    UnknownArray(ArrayId),
    /// A reference's subscript count differs from the declared rank.
    RankMismatch {
        /// The offending array.
        array: ArrayId,
        /// Declared rank.
        declared: usize,
        /// Rank used by the reference.
        used: usize,
    },
    /// A reference's access matrix has a different depth than the nest.
    DepthMismatch {
        /// Depth used by the reference.
        used: usize,
        /// The nest's depth.
        nest: usize,
    },
    /// The nest has no statements.
    NoStatements,
}

impl fmt::Display for NestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NestError::Empty => write!(f, "loop nest has no loops"),
            NestError::BoundUsesInnerVariable { loop_index } => write!(
                f,
                "bound of loop {loop_index} references a non-outer loop variable"
            ),
            NestError::UnknownArray(id) => write!(f, "reference to undeclared {id}"),
            NestError::RankMismatch {
                array,
                declared,
                used,
            } => write!(
                f,
                "{array} declared with rank {declared} but referenced with {used} subscripts"
            ),
            NestError::DepthMismatch { used, nest } => write!(
                f,
                "reference subscripts range over {used} variables in a {nest}-deep nest"
            ),
            NestError::NoStatements => write!(f, "loop nest has no statements"),
        }
    }
}

impl Error for NestError {}

/// A validated perfect loop nest: loops (outermost first), array
/// declarations, and the innermost body's statements.
///
/// ```
/// use loopmem_ir::{ArrayDecl, ArrayRef, AccessKind, ArrayId, Loop, LoopNest, Statement};
/// use loopmem_linalg::IMat;
///
/// // Example 4: for i = 1 to 20, for j = 1 to 10 { A[2i + 5j + 1]; }
/// let nest = LoopNest::new(
///     vec![
///         Loop::rectangular("i", 2, 1, 20),
///         Loop::rectangular("j", 2, 1, 10),
///     ],
///     vec![ArrayDecl::new("A", vec![71])],
///     vec![Statement::new(vec![ArrayRef::new(
///         ArrayId(0),
///         IMat::from_rows(&[vec![2, 5]]),
///         vec![1],
///         AccessKind::Read,
///     )])],
/// ).unwrap();
/// assert_eq!(nest.depth(), 2);
/// assert_eq!(nest.iteration_count(), Some(200));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopNest {
    loops: Vec<Loop>,
    arrays: Vec<ArrayDecl>,
    statements: Vec<Statement>,
}

impl LoopNest {
    /// Validates and creates a nest.
    ///
    /// # Errors
    ///
    /// Returns a [`NestError`] when the nest is empty, a bound looks at an
    /// inner variable, or a reference disagrees with the declarations.
    pub fn new(
        loops: Vec<Loop>,
        arrays: Vec<ArrayDecl>,
        statements: Vec<Statement>,
    ) -> Result<Self, NestError> {
        if loops.is_empty() {
            return Err(NestError::Empty);
        }
        if statements.is_empty() {
            return Err(NestError::NoStatements);
        }
        let n = loops.len();
        for (k, l) in loops.iter().enumerate() {
            for piece in l.lower.pieces().iter().chain(l.upper.pieces()) {
                if piece.expr.nvars() != n {
                    return Err(NestError::DepthMismatch {
                        used: piece.expr.nvars(),
                        nest: n,
                    });
                }
                if piece.expr.coeffs()[k..].iter().any(|&c| c != 0) {
                    return Err(NestError::BoundUsesInnerVariable { loop_index: k });
                }
            }
        }
        for s in &statements {
            for r in s.refs() {
                let Some(decl) = arrays.get(r.array.0) else {
                    return Err(NestError::UnknownArray(r.array));
                };
                if decl.rank() != r.rank() {
                    return Err(NestError::RankMismatch {
                        array: r.array,
                        declared: decl.rank(),
                        used: r.rank(),
                    });
                }
                if r.depth() != n {
                    return Err(NestError::DepthMismatch {
                        used: r.depth(),
                        nest: n,
                    });
                }
            }
        }
        Ok(LoopNest {
            loops,
            arrays,
            statements,
        })
    }

    /// The loops, outermost first.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// The declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// The innermost body's statements.
    pub fn statements(&self) -> &[Statement] {
        &self.statements
    }

    /// Nest depth `n`.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// Iterator over every reference of every statement.
    pub fn refs(&self) -> impl Iterator<Item = &ArrayRef> {
        self.statements.iter().flat_map(|s| s.refs().iter())
    }

    /// All references to a given array.
    pub fn refs_to(&self, array: ArrayId) -> Vec<&ArrayRef> {
        self.refs().filter(|r| r.array == array).collect()
    }

    /// The declaration behind an [`ArrayId`].
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (impossible for ids taken from a
    /// validated nest).
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0]
    }

    /// Looks an array up by name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.arrays.iter().position(|a| a.name == name).map(ArrayId)
    }

    /// Total declared elements over all arrays — the *default* memory
    /// requirement of Figure 2.
    pub fn default_memory(&self) -> i64 {
        self.arrays.iter().map(ArrayDecl::size).sum()
    }

    /// `true` when every bound is a constant (no transformation applied).
    pub fn is_rectangular(&self) -> bool {
        self.loops.iter().all(|l| l.constant_range().is_some())
    }

    /// `(lo, hi)` per loop for rectangular nests.
    pub fn rectangular_ranges(&self) -> Option<Vec<(i64, i64)>> {
        self.loops.iter().map(Loop::constant_range).collect()
    }

    /// Exact iteration count for rectangular nests (`None` otherwise);
    /// empty ranges count as zero.
    pub fn iteration_count(&self) -> Option<i64> {
        let ranges = self.rectangular_ranges()?;
        Some(
            ranges
                .iter()
                .map(|&(lo, hi)| (hi - lo + 1).max(0))
                .product(),
        )
    }

    /// Loop-variable names, outermost first.
    pub fn var_names(&self) -> Vec<String> {
        self.loops.iter().map(|l| l.var.clone()).collect()
    }

    /// Conservative per-variable value ranges: for every executed
    /// iteration, loop variable `k` lies inside `result[k]`. Computed
    /// outermost-in with interval arithmetic over the (validated,
    /// outer-only) bounds, so it is exact for rectangular nests and a
    /// superset box for transformed ones. Returns `None` when the
    /// enclosure proves some loop can never execute (empty nest).
    pub fn var_ranges(&self) -> Option<Vec<(i64, i64)>> {
        let n = self.depth();
        // Inner variables have zero coefficients in outer bounds (checked
        // by `new`), so a (0, 0) placeholder never contributes.
        let mut ranges = vec![(0i64, 0i64); n];
        for k in 0..n {
            let l = &self.loops[k];
            let scope = &ranges[..];
            let (lo, _) = l.lower.value_range(scope);
            let (_, hi) = l.upper.value_range(scope);
            if lo > hi {
                return None;
            }
            ranges[k] = (lo, hi);
        }
        Some(ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind;
    use crate::bounds::Bound;
    use crate::expr::Affine;
    use loopmem_linalg::IMat;

    fn simple_ref(kind: AccessKind) -> ArrayRef {
        ArrayRef::new(ArrayId(0), IMat::identity(2), vec![0, 0], kind)
    }

    fn simple_nest() -> LoopNest {
        LoopNest::new(
            vec![
                Loop::rectangular("i", 2, 1, 10),
                Loop::rectangular("j", 2, 1, 10),
            ],
            vec![ArrayDecl::new("A", vec![10, 10])],
            vec![Statement::new(vec![simple_ref(AccessKind::Write)])],
        )
        .unwrap()
    }

    #[test]
    fn valid_nest_accessors() {
        let n = simple_nest();
        assert_eq!(n.depth(), 2);
        assert_eq!(n.iteration_count(), Some(100));
        assert_eq!(n.default_memory(), 100);
        assert!(n.is_rectangular());
        assert_eq!(n.array_by_name("A"), Some(ArrayId(0)));
        assert_eq!(n.array_by_name("B"), None);
        assert_eq!(n.refs_to(ArrayId(0)).len(), 1);
        assert_eq!(n.var_names(), vec!["i", "j"]);
    }

    #[test]
    fn empty_nest_rejected() {
        assert_eq!(
            LoopNest::new(vec![], vec![], vec![]).unwrap_err(),
            NestError::Empty
        );
    }

    #[test]
    fn no_statements_rejected() {
        let err =
            LoopNest::new(vec![Loop::rectangular("i", 1, 1, 10)], vec![], vec![]).unwrap_err();
        assert_eq!(err, NestError::NoStatements);
    }

    #[test]
    fn unknown_array_rejected() {
        let err = LoopNest::new(
            vec![
                Loop::rectangular("i", 2, 1, 10),
                Loop::rectangular("j", 2, 1, 10),
            ],
            vec![],
            vec![Statement::new(vec![simple_ref(AccessKind::Read)])],
        )
        .unwrap_err();
        assert_eq!(err, NestError::UnknownArray(ArrayId(0)));
    }

    #[test]
    fn rank_mismatch_rejected() {
        let err = LoopNest::new(
            vec![
                Loop::rectangular("i", 2, 1, 10),
                Loop::rectangular("j", 2, 1, 10),
            ],
            vec![ArrayDecl::new("A", vec![10])],
            vec![Statement::new(vec![simple_ref(AccessKind::Read)])],
        )
        .unwrap_err();
        assert!(matches!(err, NestError::RankMismatch { .. }));
    }

    #[test]
    fn bound_using_inner_variable_rejected() {
        // Outer loop bound referencing the inner variable j.
        let bad = Loop {
            var: "i".into(),
            lower: Bound::single(Affine::new(vec![0, 1], 0)),
            upper: Bound::constant(2, 10),
        };
        let err = LoopNest::new(
            vec![bad, Loop::rectangular("j", 2, 1, 10)],
            vec![ArrayDecl::new("A", vec![10, 10])],
            vec![Statement::new(vec![simple_ref(AccessKind::Read)])],
        )
        .unwrap_err();
        assert_eq!(err, NestError::BoundUsesInnerVariable { loop_index: 0 });
    }

    #[test]
    fn triangular_bound_accepted() {
        // for i = 1 to 10, for j = i to 10 — legal (outer var only).
        let inner = Loop {
            var: "j".into(),
            lower: Bound::single(Affine::new(vec![1, 0], 0)),
            upper: Bound::constant(2, 10),
        };
        let nest = LoopNest::new(
            vec![Loop::rectangular("i", 2, 1, 10), inner],
            vec![ArrayDecl::new("A", vec![10, 10])],
            vec![Statement::new(vec![simple_ref(AccessKind::Read)])],
        )
        .unwrap();
        assert!(!nest.is_rectangular());
        assert_eq!(nest.iteration_count(), None);
    }

    #[test]
    fn empty_range_counts_zero() {
        let nest = LoopNest::new(
            vec![
                Loop::rectangular("i", 2, 5, 4),
                Loop::rectangular("j", 2, 1, 10),
            ],
            vec![ArrayDecl::new("A", vec![10, 10])],
            vec![Statement::new(vec![simple_ref(AccessKind::Read)])],
        )
        .unwrap();
        assert_eq!(nest.iteration_count(), Some(0));
    }
}
