//! Property-style tests for the exact linear-algebra substrate.
//!
//! Cases are drawn from the in-tree deterministic generator
//! ([`loopmem_linalg::rng::Lcg`]) so the suite runs with no external
//! dependencies; every case is reproducible from its printed seed.

use loopmem_linalg::gcd::{div_ceil, div_floor, extended_gcd, gcd_i64, primitive};
use loopmem_linalg::hnf::{column_echelon, complete_unimodular, solve_diophantine};
use loopmem_linalg::rng::Lcg;
use loopmem_linalg::{integer_nullspace, IMat, Rational};

fn small_matrix(rng: &mut Lcg, rows: usize, cols: usize) -> IMat {
    let rows: Vec<Vec<i64>> = (0..rows).map(|_| rng.ivec(cols, -9, 9)).collect();
    IMat::from_rows(&rows)
}

#[test]
fn gcd_divides_both() {
    let mut rng = Lcg::new(0x11);
    for _ in 0..500 {
        let a = rng.range_i64(-1000, 999);
        let b = rng.range_i64(-1000, 999);
        let g = gcd_i64(a, b);
        if g != 0 {
            assert_eq!(a % g, 0, "gcd({a},{b})={g}");
            assert_eq!(b % g, 0, "gcd({a},{b})={g}");
        } else {
            assert_eq!((a, b), (0, 0));
        }
    }
}

#[test]
fn extended_gcd_bezout() {
    let mut rng = Lcg::new(0x12);
    for _ in 0..500 {
        let a = rng.range_i64(-1000, 999);
        let b = rng.range_i64(-1000, 999);
        let (g, x, y) = extended_gcd(a, b);
        assert_eq!(a * x + b * y, g, "bezout({a},{b})");
        assert_eq!(g, gcd_i64(a, b));
    }
}

#[test]
fn primitive_is_parallel_and_coprime() {
    let mut rng = Lcg::new(0x13);
    for _ in 0..300 {
        let len = rng.range_usize(1, 4);
        let v = rng.ivec(len, -50, 50);
        let p = primitive(&v);
        // Parallel: cross products vanish.
        for i in 0..v.len() {
            for j in 0..v.len() {
                assert_eq!(v[i] * p[j], v[j] * p[i], "{v:?} vs {p:?}");
            }
        }
        if v.iter().any(|&x| x != 0) {
            let g = p.iter().fold(0i64, |g, &x| gcd_i64(g, x));
            assert_eq!(g, 1, "{v:?} -> {p:?}");
        }
    }
}

#[test]
fn floor_ceil_consistent() {
    let mut rng = Lcg::new(0x14);
    for _ in 0..1000 {
        let a = rng.range_i64(-10_000, 9_999);
        let b = if rng.range_i64(0, 1) == 0 {
            rng.range_i64(-50, -1)
        } else {
            rng.range_i64(1, 50)
        };
        let f = div_floor(a, b);
        let c = div_ceil(a, b);
        assert!(f <= c, "{a}/{b}");
        assert!((c - f) <= 1, "{a}/{b}");
        assert_eq!(f == c, a % b == 0, "{a}/{b}");
        // floor is the unique q with q <= a/b < q+1; multiplying by b flips
        // the inequalities when b < 0.
        if b > 0 {
            assert!(f * b <= a && a < (f + 1) * b, "{a}/{b}");
            assert!((c - 1) * b < a && a <= c * b, "{a}/{b}");
        } else {
            assert!(f * b >= a && a > (f + 1) * b, "{a}/{b}");
            assert!((c - 1) * b > a && a >= c * b, "{a}/{b}");
        }
    }
}

#[test]
fn rational_field_axioms() {
    let mut rng = Lcg::new(0x15);
    for _ in 0..500 {
        let mut q = || Rational::new(rng.range_i64(-40, 39) as i128, rng.range_i64(1, 8) as i128);
        let (a, b, c) = (q(), q(), q());
        assert_eq!(a + b, b + a);
        assert_eq!((a + b) + c, a + (b + c));
        assert_eq!(a * (b + c), a * b + a * c);
        assert_eq!(a - a, Rational::ZERO);
        if !b.is_zero() {
            assert_eq!(a / b * b, a);
        }
    }
}

#[test]
fn rational_floor_le_value() {
    let mut rng = Lcg::new(0x16);
    for _ in 0..500 {
        let n = rng.range_i64(-500, 499) as i128;
        let d = rng.range_i64(1, 19) as i128;
        let r = Rational::new(n, d);
        let f = Rational::from(r.floor());
        let c = Rational::from(r.ceil());
        assert!(f <= r && r <= c, "{n}/{d}");
        assert!(r - f < Rational::ONE, "{n}/{d}");
        assert!(c - r < Rational::ONE, "{n}/{d}");
    }
}

#[test]
fn column_echelon_preserves_product() {
    let mut rng = Lcg::new(0x17);
    for case in 0..200 {
        let a = small_matrix(&mut rng, 3, 4);
        let ce = column_echelon(&a);
        assert_eq!(&a * &ce.v, ce.echelon.clone(), "case {case}: {a:?}");
        assert_eq!(ce.v.det().abs(), 1, "case {case}");
        // Columns beyond the pivots are zero.
        for j in ce.pivots.len()..a.ncols() {
            assert!(ce.echelon.col(j).iter().all(|&x| x == 0), "case {case}");
        }
    }
}

#[test]
fn nullspace_annihilates() {
    let mut rng = Lcg::new(0x18);
    for case in 0..200 {
        let a = small_matrix(&mut rng, 2, 4);
        for v in integer_nullspace(&a) {
            assert_eq!(a.mul_vec(&v), vec![0i64; a.nrows()], "case {case}");
            let g = v.iter().fold(0i64, |g, &x| gcd_i64(g, x));
            assert!(g <= 1, "case {case}: kernel vector {v:?} not primitive");
        }
        // Kernel dimension + rank = #columns.
        assert_eq!(
            integer_nullspace(&a).len() + a.rank(),
            a.ncols(),
            "case {case}"
        );
    }
}

#[test]
fn completion_is_unimodular_when_coprime() {
    for a in -9i64..=9 {
        for b in -9i64..=9 {
            let t = complete_unimodular(&[a, b]);
            if gcd_i64(a, b) == 1 {
                let t = t.unwrap();
                assert_eq!(t.row(0), &[a, b][..]);
                assert_eq!(t.det(), 1);
            } else {
                assert!(t.is_none(), "({a},{b})");
            }
        }
    }
}

#[test]
fn diophantine_solutions_satisfy_system() {
    let mut rng = Lcg::new(0x19);
    for case in 0..200 {
        let a = small_matrix(&mut rng, 2, 3);
        let b = rng.ivec(2, -20, 20);
        if let Some(sol) = solve_diophantine(&a, &b) {
            assert_eq!(a.mul_vec(&sol.particular), b.clone(), "case {case}");
            for k in &sol.kernel {
                assert_eq!(a.mul_vec(k), vec![0, 0], "case {case}");
            }
        }
    }
}

#[test]
fn diophantine_finds_planted_solution() {
    let mut rng = Lcg::new(0x1a);
    for case in 0..200 {
        let a = small_matrix(&mut rng, 2, 3);
        let x = rng.ivec(3, -10, 10);
        // If we plant b = A*x, a solution must be found.
        let b = a.mul_vec(&x);
        assert!(
            solve_diophantine(&a, &b).is_some(),
            "case {case}: planted solution {x:?} of {a:?} not found"
        );
    }
}

#[test]
fn det_of_product_is_product_of_dets() {
    let mut rng = Lcg::new(0x1b);
    for case in 0..200 {
        let a = small_matrix(&mut rng, 3, 3);
        let b = small_matrix(&mut rng, 3, 3);
        assert_eq!((&a * &b).det(), a.det() * b.det(), "case {case}");
    }
}

#[test]
fn transpose_preserves_det() {
    let mut rng = Lcg::new(0x1c);
    for case in 0..200 {
        let a = small_matrix(&mut rng, 3, 3);
        assert_eq!(a.det(), a.transpose().det(), "case {case}");
    }
}
