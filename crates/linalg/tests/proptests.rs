//! Property-based tests for the exact linear-algebra substrate.

use loopmem_linalg::gcd::{div_ceil, div_floor, extended_gcd, gcd_i64, primitive};
use loopmem_linalg::hnf::{column_echelon, complete_unimodular, solve_diophantine};
use loopmem_linalg::{integer_nullspace, IMat, Rational};
use proptest::prelude::*;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = IMat> {
    proptest::collection::vec(proptest::collection::vec(-9i64..=9, cols), rows)
        .prop_map(|rows| IMat::from_rows(&rows))
}

proptest! {
    #[test]
    fn gcd_divides_both(a in -1000i64..1000, b in -1000i64..1000) {
        let g = gcd_i64(a, b);
        if g != 0 {
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
        } else {
            prop_assert_eq!(a, 0);
            prop_assert_eq!(b, 0);
        }
    }

    #[test]
    fn extended_gcd_bezout(a in -1000i64..1000, b in -1000i64..1000) {
        let (g, x, y) = extended_gcd(a, b);
        prop_assert_eq!(a * x + b * y, g);
        prop_assert_eq!(g, gcd_i64(a, b));
    }

    #[test]
    fn primitive_is_parallel_and_coprime(v in proptest::collection::vec(-50i64..=50, 1..5)) {
        let p = primitive(&v);
        // Parallel: cross products vanish.
        for i in 0..v.len() {
            for j in 0..v.len() {
                prop_assert_eq!(v[i] * p[j], v[j] * p[i]);
            }
        }
        if v.iter().any(|&x| x != 0) {
            let g = p.iter().fold(0i64, |g, &x| gcd_i64(g, x));
            prop_assert_eq!(g, 1);
        }
    }

    #[test]
    fn floor_ceil_consistent(a in -10_000i64..10_000, b in prop_oneof![-50i64..=-1, 1i64..=50]) {
        let f = div_floor(a, b);
        let c = div_ceil(a, b);
        prop_assert!(f <= c);
        prop_assert!((c - f) <= 1);
        prop_assert_eq!(f == c, a % b == 0);
        // floor is the unique q with q <= a/b < q+1; multiplying by b flips
        // the inequalities when b < 0.
        if b > 0 {
            prop_assert!(f * b <= a && a < (f + 1) * b);
            prop_assert!((c - 1) * b < a && a <= c * b);
        } else {
            prop_assert!(f * b >= a && a > (f + 1) * b);
            prop_assert!((c - 1) * b > a && a >= c * b);
        }
    }

    #[test]
    fn rational_field_axioms(
        an in -40i128..40, ad in 1i128..9,
        bn in -40i128..40, bd in 1i128..9,
        cn in -40i128..40, cd in 1i128..9,
    ) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        let c = Rational::new(cn, cd);
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - a, Rational::ZERO);
        if !b.is_zero() {
            prop_assert_eq!(a / b * b, a);
        }
    }

    #[test]
    fn rational_floor_le_value(n in -500i128..500, d in 1i128..20) {
        let r = Rational::new(n, d);
        let f = Rational::from(r.floor());
        let c = Rational::from(r.ceil());
        prop_assert!(f <= r && r <= c);
        prop_assert!(r - f < Rational::ONE);
        prop_assert!(c - r < Rational::ONE);
    }

    #[test]
    fn column_echelon_preserves_product(a in small_matrix(3, 4)) {
        let ce = column_echelon(&a);
        prop_assert_eq!(&a * &ce.v, ce.echelon.clone());
        prop_assert_eq!(ce.v.det().abs(), 1);
        // Columns beyond the pivots are zero.
        for j in ce.pivots.len()..a.ncols() {
            prop_assert!(ce.echelon.col(j).iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn nullspace_annihilates(a in small_matrix(2, 4)) {
        for v in integer_nullspace(&a) {
            prop_assert_eq!(a.mul_vec(&v), vec![0i64; a.nrows()]);
            let g = v.iter().fold(0i64, |g, &x| gcd_i64(g, x));
            prop_assert!(g <= 1);
        }
        // Kernel dimension + rank = #columns.
        prop_assert_eq!(integer_nullspace(&a).len() + a.rank(), a.ncols());
    }

    #[test]
    fn completion_is_unimodular_when_coprime(a in -9i64..=9, b in -9i64..=9) {
        let t = complete_unimodular(&[a, b]);
        if gcd_i64(a, b) == 1 {
            let t = t.unwrap();
            prop_assert_eq!(t.row(0), &[a, b][..]);
            prop_assert_eq!(t.det(), 1);
        } else {
            prop_assert!(t.is_none());
        }
    }

    #[test]
    fn diophantine_solutions_satisfy_system(
        a in small_matrix(2, 3),
        b in proptest::collection::vec(-20i64..=20, 2),
    ) {
        if let Some(sol) = solve_diophantine(&a, &b) {
            prop_assert_eq!(a.mul_vec(&sol.particular), b.clone());
            for k in &sol.kernel {
                prop_assert_eq!(a.mul_vec(k), vec![0, 0]);
            }
        }
    }

    #[test]
    fn diophantine_finds_planted_solution(
        a in small_matrix(2, 3),
        x in proptest::collection::vec(-10i64..=10, 3),
    ) {
        // If we plant b = A*x, a solution must be found.
        let b = a.mul_vec(&x);
        let sol = solve_diophantine(&a, &b);
        prop_assert!(sol.is_some(), "planted solution not found");
    }

    #[test]
    fn det_of_product_is_product_of_dets(a in small_matrix(3, 3), b in small_matrix(3, 3)) {
        prop_assert_eq!((&a * &b).det(), a.det() * b.det());
    }

    #[test]
    fn transpose_preserves_det(a in small_matrix(3, 3)) {
        prop_assert_eq!(a.det(), a.transpose().det());
    }
}
