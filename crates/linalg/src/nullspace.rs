//! Primitive integer null spaces of access matrices.
//!
//! When an array's dimensionality is smaller than the loop depth, the access
//! matrix is rank deficient and two iterations `~i`, `~j` touch the same
//! element exactly when `~j − ~i` lies in the integer kernel of the access
//! matrix. The paper calls a primitive generator of that kernel the *reuse
//! vector* (§3.2): `A[2i+5j]` reuses along `(5, −2)`, `A[3i+k][j+k]` along
//! `(1, 3, −3)` up to sign.

use crate::hnf::kernel_basis;
use crate::imat::IMat;

/// Basis of the integer kernel `{x ∈ ℤⁿ : a·x = 0}`.
///
/// Every vector is *primitive* (coprime entries) and normalized so its first
/// non-zero entry is positive, matching the paper's convention for reuse and
/// dependence vectors. The basis is empty iff `a` has full column rank.
///
/// ```
/// use loopmem_linalg::{integer_nullspace, IMat};
/// let a = IMat::from_rows(&[vec![2, 5]]); // Example 4: A[2i + 5j]
/// let ns = integer_nullspace(&a);
/// assert_eq!(ns, vec![vec![5, -2]]);
/// ```
pub fn integer_nullspace(a: &IMat) -> Vec<Vec<i64>> {
    kernel_basis(a)
}

/// The unique (up to sign) reuse direction of a rank-deficient access
/// matrix whose kernel is one-dimensional, normalized lexicographically
/// positive.
///
/// Returns `None` when the kernel dimension differs from one — callers that
/// support higher-dimensional reuse must use [`integer_nullspace`].
pub fn reuse_vector(a: &IMat) -> Option<Vec<i64>> {
    let ns = integer_nullspace(a);
    if ns.len() == 1 {
        Some(ns.into_iter().next().expect("length checked"))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example4_reuse_vector() {
        let a = IMat::from_rows(&[vec![2, 5]]);
        assert_eq!(reuse_vector(&a), Some(vec![5, -2]));
    }

    #[test]
    fn example5_reuse_vector() {
        // A[3i + k][j + k]: kernel of [[3,0,1],[0,1,1]] is spanned by
        // (1, 3, -3) — the paper writes the magnitudes (1, 3, 3).
        let a = IMat::from_rows(&[vec![3, 0, 1], vec![0, 1, 1]]);
        let v = reuse_vector(&a).unwrap();
        assert_eq!(a.mul_vec(&v), vec![0, 0]);
        assert_eq!(v.iter().map(|x| x.abs()).collect::<Vec<_>>(), vec![1, 3, 3]);
        assert!(v[0] > 0, "normalized lex-positive");
    }

    #[test]
    fn full_rank_has_empty_kernel() {
        assert!(integer_nullspace(&IMat::identity(3)).is_empty());
        assert!(reuse_vector(&IMat::identity(2)).is_none());
    }

    #[test]
    fn two_dimensional_kernel() {
        // One constraint over three variables: kernel has dimension 2.
        let a = IMat::from_rows(&[vec![1, 1, 1]]);
        let ns = integer_nullspace(&a);
        assert_eq!(ns.len(), 2);
        for v in &ns {
            assert_eq!(v.iter().sum::<i64>(), 0);
            let first = v.iter().find(|&&x| x != 0).unwrap();
            assert!(*first > 0);
        }
        assert!(reuse_vector(&a).is_none());
    }

    #[test]
    fn kernel_vectors_are_primitive() {
        let a = IMat::from_rows(&[vec![4, 10]]);
        let ns = integer_nullspace(&a);
        assert_eq!(ns, vec![vec![5, -2]]);
    }

    #[test]
    fn zero_matrix_kernel_is_standard_basis_sized() {
        let a = IMat::zeros(2, 3);
        let ns = integer_nullspace(&a);
        assert_eq!(ns.len(), 3);
    }
}
