//! Dense rational matrices with exact Gaussian elimination.

use crate::Rational;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of [`Rational`] entries.
///
/// Provides the exact elimination kernels behind rank computation, linear
/// solving (dependence-distance systems), inversion (unimodular transforms),
/// and rational null spaces.
#[derive(Clone, PartialEq, Eq)]
pub struct RMat {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl RMat {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        RMat {
            rows,
            cols,
            data: vec![Rational::ZERO; rows * cols],
        }
    }

    /// Builds a matrix from rows of rationals.
    ///
    /// # Panics
    ///
    /// Panics on ragged or empty input.
    pub fn from_rows(rows: &[Vec<Rational>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        RMat {
            rows: rows.len(),
            cols,
            data: rows.concat(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Reduces `self` to row echelon form in place; returns the pivot
    /// columns (one per non-zero row, ascending).
    pub fn row_reduce(&mut self) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut r = 0;
        for c in 0..self.cols {
            if r == self.rows {
                break;
            }
            // Find pivot in column c at or below row r.
            let Some(p) = (r..self.rows).find(|&i| !self[(i, c)].is_zero()) else {
                continue;
            };
            self.swap_rows(r, p);
            // Normalize pivot row.
            let inv = self[(r, c)].recip();
            for j in c..self.cols {
                self[(r, j)] = self[(r, j)] * inv;
            }
            // Eliminate all other rows (full reduction).
            for i in 0..self.rows {
                if i != r && !self[(i, c)].is_zero() {
                    let f = self[(i, c)];
                    for j in c..self.cols {
                        let sub = f * self[(r, j)];
                        self[(i, j)] = self[(i, j)] - sub;
                    }
                }
            }
            pivots.push(c);
            r += 1;
        }
        pivots
    }

    /// Rank over the rationals.
    pub fn rank(&self) -> usize {
        self.clone().row_reduce().len()
    }

    /// Solves `self * x = b` for one solution, if the system is consistent.
    ///
    /// Returns `None` for inconsistent systems. Under-determined systems
    /// return the solution with free variables set to zero.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.nrows()`.
    pub fn solve(&self, b: &[Rational]) -> Option<Vec<Rational>> {
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let mut aug = RMat::zeros(self.rows, self.cols + 1);
        for i in 0..self.rows {
            for j in 0..self.cols {
                aug[(i, j)] = self[(i, j)];
            }
            aug[(i, self.cols)] = b[i];
        }
        let pivots = aug.row_reduce();
        // Inconsistent iff a pivot lands in the augmented column.
        if pivots.last() == Some(&self.cols) {
            return None;
        }
        let mut x = vec![Rational::ZERO; self.cols];
        for (r, &c) in pivots.iter().enumerate() {
            x[c] = aug[(r, self.cols)];
        }
        Some(x)
    }

    /// Exact inverse; `None` if singular or non-square.
    pub fn inverse(&self) -> Option<RMat> {
        if self.rows != self.cols {
            return None;
        }
        let n = self.rows;
        let mut aug = RMat::zeros(n, 2 * n);
        for i in 0..n {
            for j in 0..n {
                aug[(i, j)] = self[(i, j)];
            }
            aug[(i, n + i)] = Rational::ONE;
        }
        let pivots = aug.row_reduce();
        if pivots.len() < n || pivots.iter().any(|&c| c >= n) {
            return None;
        }
        let mut out = RMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                out[(i, j)] = aug[(i, n + j)];
            }
        }
        Some(out)
    }

    /// A basis of the (right) null space `{x : self * x = 0}`.
    ///
    /// One basis vector per free column of the echelon form; an empty `Vec`
    /// means the kernel is trivial.
    pub fn nullspace(&self) -> Vec<Vec<Rational>> {
        let mut m = self.clone();
        let pivots = m.row_reduce();
        let is_pivot: Vec<bool> = {
            let mut v = vec![false; self.cols];
            for &c in &pivots {
                v[c] = true;
            }
            v
        };
        let mut basis = Vec::new();
        for free in 0..self.cols {
            if is_pivot[free] {
                continue;
            }
            let mut v = vec![Rational::ZERO; self.cols];
            v[free] = Rational::ONE;
            for (r, &c) in pivots.iter().enumerate() {
                v[c] = -m[(r, free)];
            }
            basis.push(v);
        }
        basis
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            let t = self[(a, j)];
            self[(a, j)] = self[(b, j)];
            self[(b, j)] = t;
        }
    }
}

impl Index<(usize, usize)> for RMat {
    type Output = Rational;
    fn index(&self, (i, j): (usize, usize)) -> &Rational {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for RMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Rational {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for RMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128) -> Rational {
        Rational::from(n)
    }

    #[test]
    fn solve_unique() {
        // x + 2y = 5; 3x - y = 1  =>  x = 1, y = 2
        let m = RMat::from_rows(&[vec![r(1), r(2)], vec![r(3), r(-1)]]);
        let x = m.solve(&[r(5), r(1)]).unwrap();
        assert_eq!(x, vec![r(1), r(2)]);
    }

    #[test]
    fn solve_inconsistent() {
        let m = RMat::from_rows(&[vec![r(1), r(1)], vec![r(2), r(2)]]);
        assert!(m.solve(&[r(1), r(3)]).is_none());
    }

    #[test]
    fn solve_underdetermined_sets_free_vars_to_zero() {
        // 2i + 5j = 10 has solution with j free -> j = 0, i = 5.
        let m = RMat::from_rows(&[vec![r(2), r(5)]]);
        let x = m.solve(&[r(10)]).unwrap();
        assert_eq!(x, vec![r(5), r(0)]);
    }

    #[test]
    fn inverse_roundtrip() {
        let m = RMat::from_rows(&[vec![r(2), r(3)], vec![r(1), r(2)]]);
        let inv = m.inverse().unwrap();
        assert_eq!(inv[(0, 0)], r(2));
        assert_eq!(inv[(0, 1)], r(-3));
        assert_eq!(inv[(1, 0)], r(-1));
        assert_eq!(inv[(1, 1)], r(2));
    }

    #[test]
    fn singular_has_no_inverse() {
        let m = RMat::from_rows(&[vec![r(1), r(2)], vec![r(2), r(4)]]);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn nullspace_of_example4_access_matrix() {
        // Access A[2i + 5j]: kernel spanned by (5, -2) (paper's reuse
        // direction, up to sign/scale).
        let m = RMat::from_rows(&[vec![r(2), r(5)]]);
        let ns = m.nullspace();
        assert_eq!(ns.len(), 1);
        let v = &ns[0];
        // Must satisfy 2*v0 + 5*v1 = 0.
        assert_eq!(r(2) * v[0] + r(5) * v[1], r(0));
    }

    #[test]
    fn nullspace_trivial_for_full_rank() {
        let m = RMat::from_rows(&[vec![r(1), r(0)], vec![r(0), r(1)]]);
        assert!(m.nullspace().is_empty());
    }

    #[test]
    fn rank_examples() {
        let m = RMat::from_rows(&[vec![r(3), r(0), r(1)], vec![r(0), r(1), r(1)]]);
        assert_eq!(m.rank(), 2);
        let z = RMat::zeros(3, 3);
        assert_eq!(z.rank(), 0);
    }
}
