#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Exact integer and rational linear algebra for loop-nest analysis.
//!
//! This crate is the numeric substrate of the `loopmem` workspace, the
//! reproduction of *"Reducing Memory Requirements of Nested Loops for
//! Embedded Systems"* (Ramanujam, Hong, Kandemir, Narayan — DAC 2001).
//! Everything in the paper — dependence distances, reuse vectors, unimodular
//! transformations, loop-bound regeneration — is exact integer mathematics,
//! so no floating point appears anywhere in the workspace.
//!
//! # Contents
//!
//! * [`Rational`] — arbitrary-sign exact rationals over `i128` with
//!   overflow-checked arithmetic.
//! * [`IMat`] — dense integer matrices with exact determinant (Bareiss),
//!   rank, products, and unimodular inverses.
//! * [`RMat`] — dense rational matrices with Gaussian elimination, solving,
//!   and null-space extraction.
//! * [`nullspace`] — primitive integer null-space bases (the paper's "reuse
//!   vectors" for rank-deficient access matrices).
//! * [`hnf`] — Hermite normal form and unimodular completion (extending a
//!   row such as the optimizer's `(a, b)` to a full unimodular matrix).
//! * [`gcd`] — gcd / extended gcd / lcm helpers.
//!
//! # Example
//!
//! Completing the first row `(2, 3)` found by the paper's §4.2 branch and
//! bound into a unimodular transformation:
//!
//! ```
//! use loopmem_linalg::{hnf::complete_unimodular, IMat};
//!
//! let t = complete_unimodular(&[2, 3]).expect("gcd(2,3) = 1 so completion exists");
//! assert_eq!(t.det(), 1);
//! assert_eq!(t.row(0), &[2, 3]);
//! ```

pub mod gcd;
pub mod hnf;
pub mod imat;
pub mod nullspace;
pub mod rational;
pub mod rmat;
pub mod rng;

pub use gcd::{extended_gcd, gcd_i64, lcm_i64};
pub use hnf::{complete_unimodular, complete_unimodular_rows, hermite_normal_form};
pub use imat::IMat;
pub use nullspace::integer_nullspace;
pub use rational::Rational;
pub use rmat::RMat;
pub use rng::Lcg;

/// The integer scalar type used across the workspace.
///
/// Loop bounds, subscripts, and dependence distances in embedded kernels are
/// tiny; `i64` leaves a huge safety margin and intermediate products are
/// computed in `i128`.
pub type Int = i64;
