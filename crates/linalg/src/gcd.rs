//! Greatest-common-divisor helpers used throughout the workspace.

/// Non-negative greatest common divisor of two integers.
///
/// `gcd_i64(0, 0)` is defined as `0`.
///
/// ```
/// use loopmem_linalg::gcd::gcd_i64;
/// assert_eq!(gcd_i64(12, -18), 6);
/// assert_eq!(gcd_i64(0, 7), 7);
/// ```
pub fn gcd_i64(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a as i64
}

/// Least common multiple. Panics on overflow; `lcm_i64(0, x) == 0`.
///
/// ```
/// use loopmem_linalg::gcd::lcm_i64;
/// assert_eq!(lcm_i64(4, 6), 12);
/// ```
pub fn lcm_i64(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        return 0;
    }
    let g = gcd_i64(a, b);
    (a / g).checked_mul(b).expect("lcm overflow").abs()
}

/// Extended Euclid: returns `(g, x, y)` with `a*x + b*y == g == gcd(a, b)`
/// and `g >= 0`.
///
/// ```
/// use loopmem_linalg::gcd::extended_gcd;
/// let (g, x, y) = extended_gcd(240, 46);
/// assert_eq!(g, 2);
/// assert_eq!(240 * x + 46 * y, 2);
/// ```
pub fn extended_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    // Invariants: old_r = a*old_s + b*old_t, r = a*s + b*t.
    let (mut old_r, mut r) = (a, b);
    let (mut old_s, mut s) = (1i64, 0i64);
    let (mut old_t, mut t) = (0i64, 1i64);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
        (old_t, t) = (t, old_t - q * t);
    }
    if old_r < 0 {
        (-old_r, -old_s, -old_t)
    } else {
        (old_r, old_s, old_t)
    }
}

/// Gcd of a slice; `0` for an empty slice or all-zero input.
///
/// ```
/// use loopmem_linalg::gcd::gcd_slice;
/// assert_eq!(gcd_slice(&[6, -9, 15]), 3);
/// assert_eq!(gcd_slice(&[]), 0);
/// ```
pub fn gcd_slice(v: &[i64]) -> i64 {
    v.iter().fold(0, |g, &x| gcd_i64(g, x))
}

/// Divide every entry by the gcd of the slice, producing a *primitive*
/// vector (entries coprime). All-zero input is returned unchanged.
///
/// ```
/// use loopmem_linalg::gcd::primitive;
/// assert_eq!(primitive(&[4, -6, 8]), vec![2, -3, 4]);
/// ```
pub fn primitive(v: &[i64]) -> Vec<i64> {
    let g = gcd_slice(v);
    if g <= 1 {
        return v.to_vec();
    }
    v.iter().map(|&x| x / g).collect()
}

/// Floor division that is correct for negative operands
/// (`div_floor(-7, 2) == -4`).
pub fn div_floor(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division that is correct for negative operands
/// (`div_ceil(-7, 2) == -3`).
pub fn div_ceil(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd_i64(0, 0), 0);
        assert_eq!(gcd_i64(0, 5), 5);
        assert_eq!(gcd_i64(5, 0), 5);
        assert_eq!(gcd_i64(-4, -6), 2);
        assert_eq!(gcd_i64(i64::MIN + 1, 1), 1);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm_i64(0, 3), 0);
        assert_eq!(lcm_i64(-4, 6), 12);
        assert_eq!(lcm_i64(7, 7), 7);
    }

    #[test]
    fn extended_gcd_identity_holds() {
        for a in -30..=30i64 {
            for b in -30..=30i64 {
                let (g, x, y) = extended_gcd(a, b);
                assert_eq!(g, gcd_i64(a, b), "gcd mismatch for ({a},{b})");
                assert_eq!(a * x + b * y, g, "bezout mismatch for ({a},{b})");
            }
        }
    }

    #[test]
    fn primitive_zero_vector_unchanged() {
        assert_eq!(primitive(&[0, 0]), vec![0, 0]);
        assert_eq!(primitive(&[0, 3, 0]), vec![0, 1, 0]);
    }

    #[test]
    fn floor_ceil_division() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_floor(7, -2), -4);
        assert_eq!(div_floor(-7, -2), 3);
        assert_eq!(div_ceil(7, 2), 4);
        assert_eq!(div_ceil(-7, 2), -3);
        assert_eq!(div_ceil(7, -2), -3);
        assert_eq!(div_ceil(-7, -2), 4);
        assert_eq!(div_floor(6, 3), 2);
        assert_eq!(div_ceil(6, 3), 2);
    }
}
