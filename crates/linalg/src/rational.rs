//! Exact rational arithmetic over `i128`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(num, den) == 1`.
///
/// Used by Gaussian elimination, Fourier–Motzkin elimination, and the
/// optimizer's continuous objective (§4.2 of the paper evaluates
/// `45 + (5a − 2b) − 18b/a` exactly before rounding).
///
/// Arithmetic is overflow-checked: loop-nest analysis never produces values
/// anywhere near `i128` range, so an overflow indicates a logic error and
/// panics.
///
/// ```
/// use loopmem_linalg::Rational;
/// let x = Rational::new(9, 2) + Rational::from(1);
/// assert_eq!(x, Rational::new(11, 2));
/// assert_eq!(x.floor(), 5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a as i128
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd_i128(num, den).max(1);
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// `true` if the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// `true` if the value is a whole number.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            -((-self.num + self.den - 1) / self.den)
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> i128 {
        -(-*self).floor()
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Exact conversion to `i64` when the value is an integer in range.
    pub fn to_i64(&self) -> Option<i64> {
        if self.den == 1 {
            i64::try_from(self.num).ok()
        } else {
            None
        }
    }

    /// Lossy conversion for reporting only (never used in analysis).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Self {
        Rational {
            num: v as i128,
            den: 1,
        }
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational {
            num: v as i128,
            den: 1,
        }
    }
}

impl From<i128> for Rational {
    fn from(v: i128) -> Self {
        Rational { num: v, den: 1 }
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        let num = self
            .num
            .checked_mul(rhs.den)
            .and_then(|l| rhs.num.checked_mul(self.den).and_then(|r| l.checked_add(r)))
            .expect("rational add overflow");
        let den = self
            .den
            .checked_mul(rhs.den)
            .expect("rational add overflow");
        Rational::new(num, den)
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd_i128(self.num, rhs.den).max(1);
        let g2 = gcd_i128(rhs.num, self.den).max(1);
        let num = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .expect("rational mul overflow");
        let den = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .expect("rational mul overflow");
        Rational::new(num, den)
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // division *is* multiplication by the reciprocal
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        let l = self
            .num
            .checked_mul(other.den)
            .expect("rational cmp overflow");
        let r = other
            .num
            .checked_mul(self.den)
            .expect("rational cmp overflow");
        l.cmp(&r)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, -7), Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 6);
        assert_eq!(a + b, Rational::new(1, 2));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 18));
        assert_eq!(a / b, Rational::from(2));
        assert_eq!(-a, Rational::new(-1, 3));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::from(5).floor(), 5);
        assert_eq!(Rational::from(5).ceil(), 5);
        assert_eq!(Rational::new(-6, 3).floor(), -2);
        assert_eq!(Rational::new(-6, 3).ceil(), -2);
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::new(5, 5) == Rational::ONE);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 2).to_string(), "3/2");
        assert_eq!(Rational::from(-4).to_string(), "-4");
    }

    #[test]
    fn paper_4_2_objective_value() {
        // §4.2: at a = 2, b = 3 the objective (9/a + 1)(5a − 2b) equals 22.
        let a = Rational::from(2);
        let b = Rational::from(3);
        let objective = (Rational::from(9) / a + Rational::ONE)
            * (Rational::from(5) * a - Rational::from(2) * b);
        assert_eq!(objective, Rational::from(22));
    }
}
