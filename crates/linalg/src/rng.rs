//! Deterministic pseudo-random numbers for tests and harnesses.
//!
//! The workspace builds with an empty cargo registry (no network), so the
//! randomized tests that used to lean on `proptest`/`rand` draw from this
//! in-tree generator instead: a [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//! stream, seeded explicitly so every failure is reproducible by seed.

/// A deterministic 64-bit generator (SplitMix64 stream).
///
/// Not cryptographic and not meant for statistics — it exists to drive
/// property-style tests and synthetic workloads with reproducible,
/// well-mixed sequences.
///
/// ```
/// use loopmem_linalg::rng::Lcg;
/// let mut a = Lcg::new(7);
/// let mut b = Lcg::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let x = a.range_i64(-5, 5);
/// assert!((-5..=5).contains(&x));
/// ```
#[derive(Clone, Debug)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        Lcg { state: seed }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        lo.wrapping_add((self.next_u64() as u128 % span) as i64)
    }

    /// Uniform `usize` in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_i64(lo as i64, hi as i64) as usize
    }

    /// Vector of `len` uniform integers in `lo..=hi`.
    pub fn ivec(&mut self, len: usize, lo: i64, hi: i64) -> Vec<i64> {
        (0..len).map(|_| self.range_i64(lo, hi)).collect()
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.range_usize(0, items.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = Lcg::new(1);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = Lcg::new(1);
                move |_| r.next_u64()
            })
            .collect();
        let c: Vec<u64> = (0..8)
            .map({
                let mut r = Lcg::new(2);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_endpoints() {
        let mut r = Lcg::new(42);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let x = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&x));
            seen_lo |= x == -3;
            seen_hi |= x == 3;
        }
        assert!(seen_lo && seen_hi, "endpoints should be reachable");
    }

    #[test]
    fn ivec_and_choose() {
        let mut r = Lcg::new(9);
        let v = r.ivec(5, 0, 0);
        assert_eq!(v, vec![0; 5]);
        let items = [10, 20, 30];
        assert!(items.contains(r.choose(&items)));
    }
}
