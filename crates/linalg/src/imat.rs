//! Dense integer matrices.

use crate::rmat::RMat;
use crate::Rational;
use std::fmt;
use std::ops::{Index, IndexMut, Mul};

/// A dense row-major integer matrix.
///
/// Access matrices, dependence sets, and unimodular transformations are all
/// `IMat`s. Dimensions in this domain are tiny (loop depth ≤ 4 in practice,
/// per §4.2 of the paper), so no sparsity or blocking is attempted.
///
/// ```
/// use loopmem_linalg::IMat;
/// let t = IMat::from_rows(&[vec![2, 3], vec![1, 2]]);
/// assert_eq!(t.det(), 1);
/// let inv = t.unimodular_inverse().unwrap();
/// assert_eq!(&t * &inv, IMat::identity(2));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IMat {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IMat {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        IMat {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = IMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or the input is empty.
    pub fn from_rows(rows: &[Vec<i64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        IMat {
            rows: rows.len(),
            cols,
            data: rows.concat(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `i`.
    pub fn row(&self, i: usize) -> &[i64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [i64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a `Vec`.
    pub fn col(&self, j: usize) -> Vec<i64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[i64]> {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// The transpose.
    pub fn transpose(&self) -> IMat {
        let mut t = IMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.ncols()` or on arithmetic overflow.
    pub fn mul_vec(&self, v: &[i64]) -> Vec<i64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(v)
                    .map(|(&a, &b)| (a as i128) * (b as i128))
                    .sum::<i128>()
                    .try_into()
                    .expect("mul_vec overflow")
            })
            .collect()
    }

    /// Exact determinant via the Bareiss fraction-free algorithm.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn det(&self) -> i64 {
        assert_eq!(self.rows, self.cols, "determinant of non-square matrix");
        let n = self.rows;
        if n == 0 {
            return 1;
        }
        let mut m: Vec<Vec<i128>> = (0..n)
            .map(|i| self.row(i).iter().map(|&x| x as i128).collect())
            .collect();
        let mut sign = 1i128;
        let mut prev = 1i128;
        for k in 0..n - 1 {
            if m[k][k] == 0 {
                // Pivot: find a row below with a non-zero entry in column k.
                match (k + 1..n).find(|&i| m[i][k] != 0) {
                    Some(i) => {
                        m.swap(k, i);
                        sign = -sign;
                    }
                    None => return 0,
                }
            }
            for i in k + 1..n {
                for j in k + 1..n {
                    let num = m[i][j]
                        .checked_mul(m[k][k])
                        .and_then(|l| m[i][k].checked_mul(m[k][j]).and_then(|r| l.checked_sub(r)))
                        .expect("determinant overflow");
                    m[i][j] = num / prev; // exact division per Bareiss
                }
                m[i][k] = 0;
            }
            prev = m[k][k];
        }
        i64::try_from(sign * m[n - 1][n - 1]).expect("determinant out of i64 range")
    }

    /// Rank over the rationals.
    pub fn rank(&self) -> usize {
        self.to_rmat().rank()
    }

    /// `true` iff the matrix is square with determinant `±1`.
    pub fn is_unimodular(&self) -> bool {
        self.rows == self.cols && self.det().abs() == 1
    }

    /// Exact inverse of a unimodular matrix (which is again integral).
    ///
    /// Returns `None` if the matrix is not unimodular.
    pub fn unimodular_inverse(&self) -> Option<IMat> {
        if !self.is_unimodular() {
            return None;
        }
        let inv = self.to_rmat().inverse()?;
        let mut out = IMat::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(i, j)] = inv[(i, j)]
                    .to_i64()
                    .expect("unimodular inverse must be integral");
            }
        }
        Some(out)
    }

    /// Converts to a rational matrix.
    pub fn to_rmat(&self) -> RMat {
        let mut m = RMat::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                m[(i, j)] = Rational::from(self[(i, j)]);
            }
        }
        m
    }
}

impl Index<(usize, usize)> for IMat {
    type Output = i64;
    fn index(&self, (i, j): (usize, usize)) -> &i64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for IMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut i64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Mul for &IMat {
    type Output = IMat;
    fn mul(self, rhs: &IMat) -> IMat {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix product");
        let mut out = IMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let s: i128 = (0..self.cols)
                    .map(|k| (self[(i, k)] as i128) * (rhs[(k, j)] as i128))
                    .sum();
                out[(i, j)] = s.try_into().expect("matrix product overflow");
            }
        }
        out
    }
}

impl fmt::Debug for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>4}", self[(i, j)])?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = IMat::from_rows(&[vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m[(1, 2)], 6);
        assert_eq!(m.col(1), vec![2, 5]);
        assert_eq!(m.transpose()[(2, 1)], 6);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_panic() {
        let _ = IMat::from_rows(&[vec![1], vec![2, 3]]);
    }

    #[test]
    fn determinant_small() {
        assert_eq!(IMat::identity(3).det(), 1);
        assert_eq!(IMat::from_rows(&[vec![2, 3], vec![1, 2]]).det(), 1);
        assert_eq!(IMat::from_rows(&[vec![0, 1], vec![1, 0]]).det(), -1);
        assert_eq!(IMat::from_rows(&[vec![2, 4], vec![1, 2]]).det(), 0);
        // 3x3 with a zero pivot forcing a swap.
        let m = IMat::from_rows(&[vec![0, 1, 2], vec![1, 0, 3], vec![4, 5, 0]]);
        assert_eq!(m.det(), 22);
    }

    #[test]
    fn determinant_matches_cofactor_3x3() {
        // Cross-check Bareiss against the closed-form 3x3 rule.
        let cases = [
            [[3i64, -1, 2], [0, 4, 1], [5, 2, -2]],
            [[1, 2, 3], [4, 5, 6], [7, 8, 10]],
            [[-2, 0, 0], [0, -3, 0], [0, 0, -5]],
        ];
        for c in cases {
            let m = IMat::from_rows(&[c[0].to_vec(), c[1].to_vec(), c[2].to_vec()]);
            let cof = c[0][0] * (c[1][1] * c[2][2] - c[1][2] * c[2][1])
                - c[0][1] * (c[1][0] * c[2][2] - c[1][2] * c[2][0])
                + c[0][2] * (c[1][0] * c[2][1] - c[1][1] * c[2][0]);
            assert_eq!(m.det(), cof);
        }
    }

    #[test]
    fn product_and_inverse() {
        let t = IMat::from_rows(&[vec![2, 3], vec![1, 2]]);
        let inv = t.unimodular_inverse().expect("unimodular");
        assert_eq!(&t * &inv, IMat::identity(2));
        assert_eq!(&inv * &t, IMat::identity(2));
        assert_eq!(inv, IMat::from_rows(&[vec![2, -3], vec![-1, 2]]));
    }

    #[test]
    fn non_unimodular_has_no_inverse() {
        let m = IMat::from_rows(&[vec![2, 0], vec![0, 2]]);
        assert!(m.unimodular_inverse().is_none());
    }

    #[test]
    fn mul_vec_applies_transformation() {
        // §2.1: applying T to a dependence vector.
        let t = IMat::from_rows(&[vec![2, 3], vec![1, 2]]);
        assert_eq!(t.mul_vec(&[3, -2]), vec![0, -1]);
    }

    #[test]
    fn rank_detects_deficiency() {
        let a = IMat::from_rows(&[vec![2, 5]]); // Example 4 access matrix
        assert_eq!(a.rank(), 1);
        let b = IMat::from_rows(&[vec![3, 0, 1], vec![0, 1, 1]]); // Example 5
        assert_eq!(b.rank(), 2);
        assert_eq!(IMat::identity(4).rank(), 4);
        assert_eq!(IMat::zeros(2, 3).rank(), 0);
    }
}
