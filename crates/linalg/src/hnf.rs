//! Column echelon reduction, Hermite-style normal forms, unimodular
//! completion, and integer (Diophantine) linear solving.
//!
//! These are the lattice tools behind the paper's §4: extending the
//! optimizer's first row `(a, b)` to a full unimodular transformation
//! (`complete_unimodular`), extending the access matrix to a transformation
//! that sinks reuse into the innermost loop (§4.3,
//! `complete_unimodular_rows`), and solving the dependence equation
//! `A·x = c1 − c2` over the integers (`solve_diophantine`).

use crate::gcd::gcd_slice;
use crate::imat::IMat;

/// Result of [`column_echelon`]: `a * v == echelon`, with `v` unimodular.
#[derive(Clone, Debug)]
pub struct ColumnEchelon {
    /// The reduced matrix (same shape as the input).
    pub echelon: IMat,
    /// The unimodular column-operation accumulator.
    pub v: IMat,
    /// `(row, col)` of each pivot, in increasing row and column order.
    pub pivots: Vec<(usize, usize)>,
}

/// Reduces `a` to column echelon form by unimodular column operations.
///
/// After the call, `a * v == echelon` where the first `pivots.len()` columns
/// of `echelon` each hold a positive leading entry (topmost non-zero) and
/// all later columns are zero. The zero columns of `echelon` mean the
/// corresponding columns of `v` form a basis of the *integer* kernel of `a`.
pub fn column_echelon(a: &IMat) -> ColumnEchelon {
    let (m, n) = (a.nrows(), a.ncols());
    let mut e = a.clone();
    let mut v = IMat::identity(n);
    let mut pivots = Vec::new();
    let mut c = 0usize;
    for r in 0..m {
        if c == n {
            break;
        }
        // Euclidean reduction of row r across columns c..n-1.
        loop {
            // Pick the column with the smallest non-zero |entry| in row r.
            let best = (c..n)
                .filter(|&j| e[(r, j)] != 0)
                .min_by_key(|&j| e[(r, j)].unsigned_abs());
            let Some(p) = best else { break };
            swap_cols(&mut e, &mut v, c, p);
            if e[(r, c)] < 0 {
                negate_col(&mut e, &mut v, c);
            }
            let pivot = e[(r, c)];
            let mut changed = false;
            for j in c + 1..n {
                if e[(r, j)] != 0 {
                    let q = div_round(e[(r, j)], pivot);
                    if q != 0 {
                        add_col_multiple(&mut e, &mut v, j, c, -q);
                        changed = true;
                    }
                    if e[(r, j)] != 0 {
                        changed = true;
                    }
                }
            }
            if !changed && (c + 1..n).all(|j| e[(r, j)] == 0) {
                break;
            }
            if !changed {
                break;
            }
        }
        if e[(r, c)] != 0 {
            pivots.push((r, c));
            c += 1;
        }
    }
    ColumnEchelon {
        echelon: e,
        v,
        pivots,
    }
}

fn div_round(a: i64, b: i64) -> i64 {
    // Round-to-nearest division keeps remainders small during reduction.
    let q = a / b;
    let rem = a - q * b;
    if 2 * rem.abs() > b.abs() {
        q + if (rem < 0) == (b < 0) { 1 } else { -1 }
    } else {
        q
    }
}

fn swap_cols(e: &mut IMat, v: &mut IMat, a: usize, b: usize) {
    if a == b {
        return;
    }
    for i in 0..e.nrows() {
        let t = e[(i, a)];
        e[(i, a)] = e[(i, b)];
        e[(i, b)] = t;
    }
    for i in 0..v.nrows() {
        let t = v[(i, a)];
        v[(i, a)] = v[(i, b)];
        v[(i, b)] = t;
    }
}

fn negate_col(e: &mut IMat, v: &mut IMat, c: usize) {
    for i in 0..e.nrows() {
        e[(i, c)] = -e[(i, c)];
    }
    for i in 0..v.nrows() {
        v[(i, c)] = -v[(i, c)];
    }
}

fn add_col_multiple(e: &mut IMat, v: &mut IMat, dst: usize, src: usize, k: i64) {
    for i in 0..e.nrows() {
        e[(i, dst)] = e[(i, dst)]
            .checked_add(k.checked_mul(e[(i, src)]).expect("column op overflow"))
            .expect("column op overflow");
    }
    for i in 0..v.nrows() {
        v[(i, dst)] = v[(i, dst)]
            .checked_add(k.checked_mul(v[(i, src)]).expect("column op overflow"))
            .expect("column op overflow");
    }
}

/// Row-style Hermite normal form: returns `(h, u)` with `u * a == h`,
/// `u` unimodular and `h` in (lower-triangular-style) row echelon with
/// positive pivots.
pub fn hermite_normal_form(a: &IMat) -> (IMat, IMat) {
    // Compute via the column echelon of the transpose.
    let ce = column_echelon(&a.transpose());
    (ce.echelon.transpose(), ce.v.transpose())
}

/// Extends a single integer row to a unimodular matrix with that row first.
///
/// Returns `None` when no completion exists, i.e. when the entries of `row`
/// are not coprime (`gcd != 1`), including the zero row.
///
/// ```
/// use loopmem_linalg::hnf::complete_unimodular;
/// let t = complete_unimodular(&[2, -3]).unwrap();
/// assert_eq!(t.row(0), &[2, -3]);
/// assert_eq!(t.det().abs(), 1);
/// assert!(complete_unimodular(&[2, 4]).is_none());
/// ```
pub fn complete_unimodular(row: &[i64]) -> Option<IMat> {
    complete_unimodular_rows(&IMat::from_rows(&[row.to_vec()]))
}

/// Extends `k` integer rows to an `n × n` unimodular matrix whose first `k`
/// rows equal the input.
///
/// A completion exists iff the rows form a basis of a *primitive* lattice
/// (equivalently, the gcd of all `k × k` minors is 1). This is the §4.3
/// construction: taking the data access matrix as the leading rows of `T`
/// forces the innermost loop to carry all the reuse, so the window collapses
/// to a single element.
///
/// Returns `None` when the rows are linearly dependent or non-primitive.
pub fn complete_unimodular_rows(rows: &IMat) -> Option<IMat> {
    let (k, n) = (rows.nrows(), rows.ncols());
    assert!(k <= n, "cannot complete more rows than columns");
    let ce = column_echelon(rows);
    if ce.pivots.len() < k {
        return None; // linearly dependent rows
    }
    // rows * v = [H | 0]; completion exists iff |det H| == 1, i.e. every
    // pivot of the echelon equals 1 (pivots are positive by construction).
    for &(r, c) in &ce.pivots {
        debug_assert_eq!(r, c, "full-row-rank echelon pivots are diagonal");
        if ce.echelon[(r, c)] != 1 {
            return None;
        }
    }
    // With M = [rows; S] and S = [0 | I] * v^{-1}, M*v = [[H,0],[0,I]] is
    // unimodular, hence so is M.
    let v_inv =
        ce.v.unimodular_inverse()
            .expect("column-op accumulator is unimodular");
    let mut out_rows: Vec<Vec<i64>> = (0..k).map(|i| rows.row(i).to_vec()).collect();
    for i in k..n {
        out_rows.push(v_inv.row(i).to_vec());
    }
    let mut m = IMat::from_rows(&out_rows);
    // Normalize to determinant +1 by flipping the last appended row.
    if k < n && m.det() == -1 {
        for x in m.row_mut(n - 1) {
            *x = -*x;
        }
    }
    debug_assert_eq!(m.det().abs(), 1);
    Some(m)
}

/// An integer solution set of `a * x = b`: every solution is
/// `particular + Σ t_i · kernel[i]` with `t_i ∈ ℤ`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiophantineSolution {
    /// One integer solution.
    pub particular: Vec<i64>,
    /// Basis of the integer kernel of `a`.
    pub kernel: Vec<Vec<i64>>,
}

/// Solves the linear Diophantine system `a * x = b` over the integers.
///
/// Returns `None` when no integer solution exists (either the rational
/// system is inconsistent or divisibility fails). This is the engine behind
/// the paper's §4.2 dependence test: a dependence between uniformly
/// generated references `A·x + c1` and `A·x + c2` exists iff
/// `A·δ = c1 − c2` has an integer solution `δ` inside the loop ranges.
pub fn solve_diophantine(a: &IMat, b: &[i64]) -> Option<DiophantineSolution> {
    assert_eq!(b.len(), a.nrows(), "rhs length mismatch");
    let n = a.ncols();
    let ce = column_echelon(a);
    // a * v = e (echelon). Solve e * y = b by forward substitution on the
    // pivot structure, then x = v * y.
    let mut y = vec![0i64; n];
    let mut consumed_rows = vec![false; a.nrows()];
    for &(r, c) in &ce.pivots {
        let mut acc: i128 = b[r] as i128;
        for (j, &yj) in y[..c].iter().enumerate() {
            acc -= (ce.echelon[(r, j)] as i128) * (yj as i128);
        }
        let p = ce.echelon[(r, c)] as i128;
        if acc % p != 0 {
            return None; // divisibility failure: no integer solution
        }
        y[c] = i64::try_from(acc / p).expect("diophantine overflow");
        consumed_rows[r] = true;
    }
    // Verify the non-pivot rows are consistent.
    for r in 0..a.nrows() {
        if consumed_rows[r] {
            continue;
        }
        let acc: i128 = (0..n)
            .map(|j| (ce.echelon[(r, j)] as i128) * (y[j] as i128))
            .sum();
        if acc != b[r] as i128 {
            return None;
        }
    }
    let particular = ce.v.mul_vec(&y);
    let kernel = (ce.pivots.len()..n).map(|j| ce.v.col(j)).collect();
    Some(DiophantineSolution { particular, kernel })
}

/// Primitive integer kernel basis of `a` (each vector has coprime entries
/// and a positive leading non-zero).
pub(crate) fn kernel_basis(a: &IMat) -> Vec<Vec<i64>> {
    let ce = column_echelon(a);
    (ce.pivots.len()..a.ncols())
        .map(|j| {
            let mut v = ce.v.col(j);
            let g = gcd_slice(&v);
            if g > 1 {
                for x in &mut v {
                    *x /= g;
                }
            }
            if let Some(first) = v.iter().find(|&&x| x != 0) {
                if *first < 0 {
                    for x in &mut v {
                        *x = -*x;
                    }
                }
            }
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_echelon_invariant() {
        let a = IMat::from_rows(&[vec![3, 0, 1], vec![0, 1, 1]]);
        let ce = column_echelon(&a);
        assert_eq!(&a * &ce.v, ce.echelon);
        assert_eq!(ce.v.det().abs(), 1);
        assert_eq!(ce.pivots.len(), 2);
        // Third column must be zero (rank 2 of a 2x3 matrix).
        assert_eq!(ce.echelon.col(2), vec![0, 0]);
    }

    #[test]
    fn complete_single_row_2d() {
        for (a, b) in [(2i64, 3i64), (2, -3), (1, 0), (0, 1), (-5, 2), (7, 9)] {
            let t = complete_unimodular(&[a, b]).unwrap();
            assert_eq!(t.row(0), &[a, b]);
            assert_eq!(t.det().abs(), 1, "not unimodular for ({a},{b})");
        }
        assert!(complete_unimodular(&[2, 4]).is_none());
        assert!(complete_unimodular(&[0, 0]).is_none());
        assert!(complete_unimodular(&[3, 6]).is_none());
    }

    #[test]
    fn complete_single_row_higher_dims() {
        for row in [
            vec![2, 3, 5],
            vec![1, 0, 0, 0],
            vec![6, 10, 15],
            vec![0, 0, 1],
        ] {
            let t = complete_unimodular(&row).unwrap();
            assert_eq!(t.row(0), row.as_slice());
            assert_eq!(t.det().abs(), 1);
        }
        assert!(complete_unimodular(&[2, 4, 6]).is_none());
    }

    #[test]
    fn complete_access_matrix_example10() {
        // §4.3: T's first two rows are the access matrix of A[3i+k][j+k].
        let acc = IMat::from_rows(&[vec![3, 0, 1], vec![0, 1, 1]]);
        let t = complete_unimodular_rows(&acc).unwrap();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.row(0), &[3, 0, 1]);
        assert_eq!(t.row(1), &[0, 1, 1]);
        assert_eq!(t.det().abs(), 1);
    }

    #[test]
    fn dependent_rows_cannot_complete() {
        let m = IMat::from_rows(&[vec![1, 2, 3], vec![2, 4, 6]]);
        assert!(complete_unimodular_rows(&m).is_none());
    }

    #[test]
    fn non_primitive_rows_cannot_complete() {
        // Rows span a sublattice of index 2: no unimodular completion.
        let m = IMat::from_rows(&[vec![2, 0], vec![0, 1]]);
        assert!(complete_unimodular_rows(&m).is_none());
    }

    #[test]
    fn diophantine_example2_dependence() {
        // Example 2: A[i][j] vs A[i-1][j+2]: solve I*x = (1, -2).
        let a = IMat::identity(2);
        let s = solve_diophantine(&a, &[1, -2]).unwrap();
        assert_eq!(s.particular, vec![1, -2]);
        assert!(s.kernel.is_empty());
    }

    #[test]
    fn diophantine_example4_reuse() {
        // Example 4: A[2i+5j]: solutions of 2x + 5y = 0 form the reuse
        // lattice spanned by (5, -2).
        let a = IMat::from_rows(&[vec![2, 5]]);
        let s = solve_diophantine(&a, &[0]).unwrap();
        assert_eq!(s.particular, vec![0, 0]);
        assert_eq!(s.kernel.len(), 1);
        let k = &s.kernel[0];
        assert_eq!(2 * k[0] + 5 * k[1], 0);
        assert_eq!(k[0].abs(), 5);
        assert_eq!(k[1].abs(), 2);
    }

    #[test]
    fn diophantine_divisibility_failure() {
        // 2x = 3 has no integer solution.
        let a = IMat::from_rows(&[vec![2]]);
        assert!(solve_diophantine(&a, &[3]).is_none());
        assert!(solve_diophantine(&a, &[4]).is_some());
    }

    #[test]
    fn diophantine_inconsistent_rows() {
        // x = 1 and x = 2 simultaneously.
        let a = IMat::from_rows(&[vec![1], vec![1]]);
        assert!(solve_diophantine(&a, &[1, 2]).is_none());
    }

    #[test]
    fn diophantine_solution_satisfies_system() {
        let a = IMat::from_rows(&[vec![3, 7], vec![4, -3]]);
        let b = [10, 1];
        let s = solve_diophantine(&a, &b);
        if let Some(s) = s {
            assert_eq!(a.mul_vec(&s.particular), b.to_vec());
            for k in &s.kernel {
                assert_eq!(a.mul_vec(k), vec![0, 0]);
            }
        }
    }

    #[test]
    fn hnf_row_form() {
        let a = IMat::from_rows(&[vec![4, 6], vec![2, 2]]);
        let (h, u) = hermite_normal_form(&a);
        assert_eq!(&u * &a, h);
        assert_eq!(u.det().abs(), 1);
    }
}
